#include "common/json.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.hpp"

namespace metascope {
namespace {

TEST(Json, ParsePrimitives) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-17").as_number(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParseNested) {
  const Json v = Json::parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  EXPECT_TRUE(v.is_object());
  const auto& a = v.at("a").as_array();
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2].at("b").as_string(), "c");
  EXPECT_TRUE(v.at("d").is_null());
}

TEST(Json, ParseStringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\nb\t\"q\"\\")").as_string(), "a\nb\t\"q\"\\");
  EXPECT_EQ(Json::parse(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(Json, ParseErrorsCarryPosition) {
  try {
    Json::parse("{\n  \"a\": ]\n}");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Json, RejectsTrailingGarbage) {
  EXPECT_THROW(Json::parse("1 2"), Error);
  EXPECT_THROW(Json::parse("{} x"), Error);
}

TEST(Json, RejectsUnterminated) {
  EXPECT_THROW(Json::parse("{\"a\": 1"), Error);
  EXPECT_THROW(Json::parse("[1, 2"), Error);
  EXPECT_THROW(Json::parse("\"abc"), Error);
}

TEST(Json, TypeMismatchThrows) {
  const Json v = Json::parse("42");
  EXPECT_THROW((void)v.as_string(), Error);
  EXPECT_THROW((void)v.as_array(), Error);
  EXPECT_THROW((void)v.at("k"), Error);
}

TEST(Json, MissingKeyThrows) {
  const Json v = Json::parse("{}");
  EXPECT_THROW((void)v.at("nope"), Error);
}

TEST(Json, Defaults) {
  const Json v = Json::parse(R"({"n": 3, "s": "x", "b": true})");
  EXPECT_DOUBLE_EQ(v.number_or("n", 9.0), 3.0);
  EXPECT_DOUBLE_EQ(v.number_or("missing", 9.0), 9.0);
  EXPECT_EQ(v.string_or("s", "d"), "x");
  EXPECT_EQ(v.string_or("missing", "d"), "d");
  EXPECT_EQ(v.bool_or("b", false), true);
  EXPECT_EQ(v.bool_or("missing", false), false);
  EXPECT_EQ(v.int_or("n", 0), 3);
}

TEST(Json, BuildersAndDump) {
  Json v;
  v.set("name", "exp1").set("ranks", 32);
  Json arr;
  arr.push_back(1).push_back(2);
  v.set("list", arr);
  const std::string compact = v.dump();
  EXPECT_EQ(compact, R"({"list":[1,2],"name":"exp1","ranks":32})");
}

TEST(Json, RoundTripThroughDump) {
  const std::string src =
      R"({"a":[1,2.5,"x",null,true],"b":{"c":-3},"empty_a":[],"empty_o":{}})";
  const Json v = Json::parse(src);
  const Json again = Json::parse(v.dump());
  EXPECT_TRUE(v == again);
  const Json pretty = Json::parse(v.dump(2));
  EXPECT_TRUE(v == pretty);
}

TEST(Json, DumpEscapesControlCharacters) {
  const Json v(std::string("a\x01" "b"));
  EXPECT_EQ(v.dump(), "\"a\\u0001b\"");
  EXPECT_EQ(Json::parse(v.dump()).as_string(), std::string("a\x01" "b"));
}

TEST(Json, IntegerFormattingHasNoDecimalPoint) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-1).dump(), "-1");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
}

TEST(Json, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "msc_json_test.json")
          .string();
  Json v;
  v.set("x", 1.5);
  save_json_file(path, v);
  const Json loaded = load_json_file(path);
  EXPECT_TRUE(v == loaded);
  std::filesystem::remove(path);
}

TEST(Json, MissingFileThrows) {
  EXPECT_THROW(load_json_file("/nonexistent/dir/x.json"), Error);
}

TEST(Json, SaveCreatesMissingParentDirectories) {
  const auto root = std::filesystem::temp_directory_path() /
                    "msc_json_mkdir_test";
  std::filesystem::remove_all(root);
  const std::string path = (root / "a" / "b" / "out.json").string();
  Json v;
  v.set("x", 1);
  save_json_file(path, v);
  EXPECT_TRUE(load_json_file(path) == v);
  std::filesystem::remove_all(root);
}

TEST(Json, UnwritablePathThrowsWithPathAndReason) {
  // /proc/version exists and is not a directory, so nothing under it
  // can be created or opened for writing.
  const std::string path = "/proc/version/x/out.json";
  try {
    save_json_file(path, Json{Json::Object{}});
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find('('), std::string::npos)
        << "missing OS reason: " << what;
  }
  EXPECT_THROW(ensure_writable_file(path), Error);
}

TEST(Json, EnsureWritableLeavesExistingContentsAlone) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "msc_json_keep.json")
          .string();
  Json v;
  v.set("keep", true);
  save_json_file(path, v);
  ensure_writable_file(path);  // append-mode probe: must not truncate
  EXPECT_TRUE(load_json_file(path) == v);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace metascope
