#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace metascope {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (const std::size_t workers : {std::size_t{0}, std::size_t{1},
                                    std::size_t{2}, std::size_t{7}}) {
    const std::size_t n = 100;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    const auto st = parallel_for(
        n, workers, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    EXPECT_EQ(st.items, n);
    EXPECT_GE(st.workers, 1u);
    EXPECT_EQ(std::accumulate(st.items_per_worker.begin(),
                              st.items_per_worker.end(), std::size_t{0}),
              n);
  }
}

TEST(ParallelFor, SingleWorkerRunsInlineInOrder) {
  std::vector<std::size_t> order;
  const auto st =
      parallel_for(10, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(st.workers, 1u);
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, ZeroItemsIsANoop) {
  const auto st =
      parallel_for(0, 4, [&](std::size_t) { FAIL() << "body called"; });
  EXPECT_EQ(st.items, 0u);
}

TEST(ParallelFor, BodyExceptionPropagates) {
  EXPECT_THROW(parallel_for(16, 4,
                            [&](std::size_t i) {
                              if (i == 7) throw Error("boom");
                            }),
               Error);
  // Inline path too.
  EXPECT_THROW(parallel_for(16, 1,
                            [&](std::size_t i) {
                              if (i == 7) throw Error("boom");
                            }),
               Error);
}

TEST(ParallelFor, DisjointSlotWritesAreDeterministic) {
  const std::size_t n = 64;
  std::vector<std::vector<double>> runs;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3},
                                    std::size_t{8}}) {
    std::vector<double> out(n, 0.0);
    parallel_for(n, workers, [&](std::size_t i) {
      double acc = 0.0;
      for (std::size_t k = 0; k <= i; ++k) acc += static_cast<double>(k) * 0.5;
      out[i] = acc;
    });
    runs.push_back(std::move(out));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(WorkerPool, ResolveWorkersClampsToTasksAndFloor) {
  EXPECT_EQ(WorkerPool::resolve_workers(3, 8), 3u);
  EXPECT_EQ(WorkerPool::resolve_workers(100, 4), 4u);
  EXPECT_GE(WorkerPool::resolve_workers(100, 0), 1u);
  EXPECT_EQ(WorkerPool::resolve_workers(0, 4), 1u);
}

TEST(WorkerPool, SuspendedTasksCompleteViaResume) {
  // Even tasks suspend once; each odd task resumes its left neighbour
  // unconditionally. If the resume lands before the neighbour's suspend,
  // the Running->Notified leg converts the suspend into an immediate
  // requeue — either interleaving completes. Exercises the
  // Parked/Notified handshake from a plain pool client (no replay
  // machinery involved).
  const std::size_t n = 32;
  WorkerPool pool(n, 4);
  std::vector<std::atomic<int>> phase(n);
  for (auto& p : phase) p.store(0);
  pool.run([&](std::size_t t) {
    if (t % 2 == 0 && phase[t].fetch_add(1) == 0) return StepOutcome::Suspend;
    if (t % 2 == 1) pool.resume(t - 1);
    return StepOutcome::Done;
  });
  const PoolStats& st = pool.stats();
  EXPECT_EQ(st.tasks, n);
  EXPECT_EQ(st.suspensions, n / 2);
  EXPECT_EQ(st.requeues, st.suspensions);
  EXPECT_EQ(std::accumulate(st.tasks_per_worker.begin(),
                            st.tasks_per_worker.end(), std::size_t{0}),
            n);
}

TEST(WorkerPool, AllTasksParkedThrowsDeadlockError) {
  const std::size_t n = 8;
  WorkerPool pool(n, 2);
  try {
    pool.run([&](std::size_t) { return StepOutcome::Suspend; });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_EQ(e.stuck_tasks(), n);
    EXPECT_EQ(e.total_tasks(), n);
  }
}

TEST(WorkerPool, StepExceptionRethrownFromRun) {
  WorkerPool pool(16, 4);
  EXPECT_THROW(pool.run([&](std::size_t t) {
    if (t == 11) throw Error("step failed");
    return StepOutcome::Done;
  }),
               Error);
}

}  // namespace
}  // namespace metascope
