// Corruption matrix for the hardened ingestion layer: every class of
// damage a trace archive can suffer, asserted against the exact
// ErrorCode the taxonomy promises in strict mode and against the
// quarantine-and-proceed contract in permissive mode (including
// serial == parallel determinism of the recovered collection and its
// severity cube).
#include "archive/archive.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "simnet/topology.hpp"
#include "tracing/epilog_io.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

namespace metascope::archive {
namespace {

namespace fs = std::filesystem;

class ArchiveCorruptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (fs::temp_directory_path() /
             ("msc_corrupt_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name()))
                .string();
    fs::remove_all(base_);
    fs::create_directories(base_);

    // Two metahosts, two ranks each; a 2+2 metatrace gives every rank
    // p2p partners and collectives on more than one communicator.
    simnet::MetahostSpec a;
    a.name = "A";
    a.num_nodes = 1;
    a.cpus_per_node = 2;
    simnet::MetahostSpec b = a;
    b.name = "B";
    const auto ia = topo_.add_metahost(a);
    const auto ib = topo_.add_metahost(b);
    topo_.place_block(ia, 1, 2);
    topo_.place_block(ib, 1, 2);

    workloads::MetaTraceConfig mt;
    mt.trace_ranks = 2;
    mt.partrace_ranks = 2;
    mt.dims[0] = 2;
    mt.dims[1] = 1;
    mt.dims[2] = 1;
    mt.coupling_steps = 2;
    mt.cg_iterations = 3;

    workloads::ExperimentConfig cfg;
    cfg.perfect_clocks = true;
    cfg.measurement.scheme = tracing::SyncScheme::None;
    data_ = workloads::run_experiment(topo_, workloads::build_metatrace(mt),
                                      cfg);

    layout_ = FileSystemLayout::per_metahost(base_, topo_.num_metahosts());
    arch_ = ExperimentArchive::create(topo_, layout_, "exp");
    arch_.write_traces(topo_, data_.traces);
  }
  void TearDown() override { fs::remove_all(base_); }

  [[nodiscard]] std::string trace_path(Rank r) const {
    return layout_.root_of(topo_.metahost_of(r)) + "/exp.msc/" +
           tracing::trace_filename(r);
  }
  [[nodiscard]] std::string defs_path(int metahost) const {
    return layout_.root_of(MetahostId{metahost}) + "/exp.msc/" +
           tracing::defs_filename();
  }

  /// Strict read, asserting it fails with the exact code (and, when
  /// rank >= 0, that the error context names the file and rank).
  void expect_strict_failure(ErrorCode code, Rank rank,
                             const std::string& label) {
    try {
      (void)arch_.read_traces();
      FAIL() << label << ": expected Error, read succeeded";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), code) << label << ": " << e.what();
      if (rank >= 0) {
        EXPECT_EQ(e.context().rank, rank) << label << ": " << e.what();
        EXPECT_EQ(e.context().path, trace_path(rank))
            << label << ": " << e.what();
      }
    }
  }

  std::string base_;
  simnet::Topology topo_;
  workloads::ExperimentData data_;
  FileSystemLayout layout_{FileSystemLayout::shared("/tmp", 1)};
  ExperimentArchive arch_;
};

TEST_F(ArchiveCorruptTest, TruncationAtEverySectionBoundary) {
  const Rank victim = 1;
  const auto intact = read_file_bytes(trace_path(victim));
  ASSERT_GT(intact.size(), 16u);
  struct Cut {
    const char* label;
    std::size_t keep;
  };
  const std::vector<Cut> cuts = {
      {"zero-byte file", 0},
      {"mid-magic", 3},
      {"magic only", 4},
      {"mid-version", 6},
      {"header only", 8},
      {"after rank id", 9},
      {"half the payload", intact.size() / 2},
      {"all but the last byte", intact.size() - 1},
  };
  for (const auto& cut : cuts) {
    write_file_bytes(
        trace_path(victim),
        std::vector<std::uint8_t>(
            intact.begin(),
            intact.begin() + static_cast<std::ptrdiff_t>(cut.keep)));
    expect_strict_failure(ErrorCode::Truncated, victim, cut.label);
  }
}

TEST_F(ArchiveCorruptTest, FlippedMagicIsCorrupt) {
  const Rank victim = 2;
  for (std::size_t byte = 0; byte < 4; ++byte) {
    auto bytes = read_file_bytes(trace_path(victim));
    bytes[byte] ^= 0x40;
    write_file_bytes(trace_path(victim), bytes);
    expect_strict_failure(ErrorCode::Corrupt, victim,
                          "magic byte " + std::to_string(byte));
  }
}

TEST_F(ArchiveCorruptTest, FutureVersionIsVersionMismatch) {
  const Rank victim = 0;
  auto bytes = read_file_bytes(trace_path(victim));
  bytes[4] = 99;  // header version field (u32 LE at offset 4)
  write_file_bytes(trace_path(victim), bytes);
  try {
    (void)arch_.read_traces();
    FAIL() << "expected VersionMismatch";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::VersionMismatch) << e.what();
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    EXPECT_EQ(e.context().rank, victim);
  }
}

TEST_F(ArchiveCorruptTest, DefsVersionMismatchNamesTheFile) {
  // Damage the defs replica in EVERY partial archive: strict mode must
  // report VersionMismatch with the file path, and permissive mode has
  // no surviving replica to fall back to, so it fails the same way.
  for (int m = 0; m < topo_.num_metahosts(); ++m) {
    auto bytes = read_file_bytes(defs_path(m));
    bytes[4] = 99;
    write_file_bytes(defs_path(m), bytes);
  }
  for (const bool permissive : {false, true}) {
    try {
      ReadOptions opts;
      opts.permissive = permissive;
      (void)arch_.read_traces(opts);
      FAIL() << "expected VersionMismatch (permissive=" << permissive << ")";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::VersionMismatch) << e.what();
      EXPECT_FALSE(e.context().path.empty());
    }
  }
}

TEST_F(ArchiveCorruptTest, CorruptDefsReplicaFallsBackPermissively) {
  // Only metahost 0's defs replica is damaged: permissive mode reads
  // the defs from the next partial archive and quarantines nothing.
  auto bytes = read_file_bytes(defs_path(0));
  bytes[0] ^= 0xFF;
  write_file_bytes(defs_path(0), bytes);

  ReadOptions opts;
  opts.permissive = true;
  ReadReport report;
  const auto loaded = arch_.read_traces(opts, &report);
  EXPECT_TRUE(report.quarantined.empty());
  ASSERT_EQ(loaded.num_ranks(), data_.traces.num_ranks());
  for (int r = 0; r < loaded.num_ranks(); ++r)
    EXPECT_EQ(loaded.ranks[static_cast<std::size_t>(r)],
              data_.traces.ranks[static_cast<std::size_t>(r)]);

  // Strict mode refuses: a damaged replica is an error even if another
  // copy exists.
  EXPECT_THROW((void)arch_.read_traces(), Error);
}

TEST_F(ArchiveCorruptTest, OversizedCountIsLimitExceeded) {
  const Rank victim = 3;
  BufWriter w;
  w.put_u32(0x5453434DU);  // "MCST"
  w.put_u32(tracing::kTraceFormatVersion);
  w.put_svarint(victim);
  w.put_varint(1ULL << 30);  // sync-record count far past the cap
  write_file_bytes(trace_path(victim), w.data());
  expect_strict_failure(ErrorCode::LimitExceeded, victim, "huge sync count");
}

TEST_F(ArchiveCorruptTest, CountLargerThanPayloadIsTruncated) {
  // A count below the absolute cap but impossible for the bytes present:
  // the decoder must reject it from the header alone, before reserving.
  const Rank victim = 3;
  BufWriter w;
  w.put_u32(0x5453434DU);
  w.put_u32(tracing::kTraceFormatVersion);
  w.put_svarint(victim);
  w.put_varint(0);     // no sync records
  w.put_varint(1000);  // ...but 1000 promised events and no payload
  write_file_bytes(trace_path(victim), w.data());
  try {
    (void)arch_.read_traces();
    FAIL() << "expected Truncated";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Truncated) << e.what();
    EXPECT_NE(std::string(e.what()).find("truncated trace file"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ArchiveCorruptTest, UnknownEventTypeIsCorruptRowWise) {
  // v2 carries the event type as a row byte.
  const Rank victim = 2;
  BufWriter w;
  w.put_u32(0x5453434DU);
  w.put_u32(2);
  w.put_svarint(victim);
  w.put_varint(0);
  w.put_varint(1);
  w.put_u8(200);  // no such EventType
  w.put_f64(1.0);
  write_file_bytes(trace_path(victim), w.data());
  expect_strict_failure(ErrorCode::Corrupt, victim, "unknown event type");
}

TEST_F(ArchiveCorruptTest, UnknownEventTypeIsCorruptColumnar) {
  // v3 carries the event types as a nibble-packed stream right after
  // the header; flip the first event's nibble to an undefined type.
  // Header: magic 4 + version 4, then rank/nsync/nev/per-type counts as
  // varints — all single-byte for this workload's shape, so the stream
  // starts at a computable offset.
  const Rank victim = 2;
  const auto& trace = data_.traces.ranks[static_cast<std::size_t>(victim)];
  auto bytes = tracing::encode_local_trace(trace, 3);
  ASSERT_LT(trace.events.size(), 128u) << "varint offsets shift";
  ASSERT_LT(trace.sync.size(), 64u);
  const std::size_t type_stream = 8 + 1 + 1 + 1 + 5;
  bytes[type_stream] = static_cast<std::uint8_t>(
      (bytes[type_stream] & 0xF0) | 0x0F);
  write_file_bytes(trace_path(victim), bytes);
  expect_strict_failure(ErrorCode::Corrupt, victim,
                        "unknown event type 15 in type stream");
}

TEST_F(ArchiveCorruptTest, ZeroLengthTraceFileTruncatedStrictQuarantinedPermissive) {
  // A zero-byte file is the degenerate mmap case (no mapping is
  // created): strict mode reports Truncated, permissive mode
  // quarantines the rank — on both the mmap and the copy read path.
  const Rank victim = 1;
  write_file_bytes(trace_path(victim), {});
  for (const bool use_mmap : {true, false}) {
    ReadOptions strict;
    strict.use_mmap = use_mmap;
    try {
      (void)arch_.read_traces(strict);
      FAIL() << "expected Truncated (mmap=" << use_mmap << ")";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::Truncated) << e.what();
      EXPECT_EQ(e.context().rank, victim);
    }
    ReadOptions permissive = strict;
    permissive.permissive = true;
    ReadReport report;
    const auto loaded = arch_.read_traces(permissive, &report);
    ASSERT_EQ(report.quarantined.size(), 1u) << "mmap=" << use_mmap;
    EXPECT_EQ(report.quarantined[0].rank, victim);
    EXPECT_EQ(report.quarantined[0].code, ErrorCode::Truncated);
    EXPECT_TRUE(loaded.ranks[static_cast<std::size_t>(victim)]
                    .events.empty());
  }
}

TEST_F(ArchiveCorruptTest, MmapAndCopyReadPathsAreByteIdentical) {
  ReadOptions with_mmap;
  with_mmap.use_mmap = true;
  ReadOptions without;
  without.use_mmap = false;
  const auto a = arch_.read_traces(with_mmap);
  const auto b = arch_.read_traces(without);
  ASSERT_EQ(a.num_ranks(), b.num_ranks());
  for (int r = 0; r < a.num_ranks(); ++r)
    EXPECT_EQ(a.ranks[static_cast<std::size_t>(r)],
              b.ranks[static_cast<std::size_t>(r)])
        << "rank " << r;
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.synchronized, b.synchronized);
}

TEST_F(ArchiveCorruptTest, MmapPermissiveQuarantinesMidDecodeFailure) {
  // Damage a rank so its mapped decode fails partway through the
  // columnar payload (not at the header): the permissive mmap read must
  // quarantine it and produce the same recovered collection as the copy
  // path.
  const Rank victim = 2;
  auto bytes = read_file_bytes(trace_path(victim));
  bytes.resize(bytes.size() - bytes.size() / 4);
  write_file_bytes(trace_path(victim), bytes);

  tracing::TraceCollection recovered[2];
  for (const bool use_mmap : {true, false}) {
    ReadOptions opts;
    opts.permissive = true;
    opts.use_mmap = use_mmap;
    ReadReport report;
    recovered[use_mmap ? 0 : 1] = arch_.read_traces(opts, &report);
    ASSERT_EQ(report.quarantined.size(), 1u) << "mmap=" << use_mmap;
    EXPECT_EQ(report.quarantined[0].rank, victim);
    EXPECT_EQ(report.quarantined[0].code, ErrorCode::Truncated);
  }
  ASSERT_EQ(recovered[0].num_ranks(), recovered[1].num_ranks());
  for (int r = 0; r < recovered[0].num_ranks(); ++r)
    EXPECT_EQ(recovered[0].ranks[static_cast<std::size_t>(r)],
              recovered[1].ranks[static_cast<std::size_t>(r)])
        << "rank " << r;
}

TEST_F(ArchiveCorruptTest, MissingTraceFileIsIoError) {
  const Rank victim = 1;
  fs::remove(trace_path(victim));
  expect_strict_failure(ErrorCode::Io, victim, "deleted trace file");
}

TEST_F(ArchiveCorruptTest, EmptyArchiveDirIsIoError) {
  for (const auto& dir : arch_.partial_dirs())
    for (const auto& entry : fs::directory_iterator(dir))
      fs::remove_all(entry.path());
  try {
    (void)arch_.read_traces();
    FAIL() << "expected Io error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Io) << e.what();
  }
}

TEST_F(ArchiveCorruptTest, PermissiveQuarantinesAndProceeds) {
  // Three victims, three damage classes: truncation, bad magic, missing
  // file. Permissive mode must quarantine exactly those ranks with the
  // matching codes (sorted by rank) and hand back decodable survivors.
  auto t1 = read_file_bytes(trace_path(1));
  t1.resize(t1.size() / 2);
  write_file_bytes(trace_path(1), t1);
  auto t2 = read_file_bytes(trace_path(2));
  t2[0] ^= 0xFF;
  write_file_bytes(trace_path(2), t2);
  fs::remove(trace_path(3));

  ReadOptions opts;
  opts.permissive = true;
  ReadReport report;
  const auto loaded = arch_.read_traces(opts, &report);

  ASSERT_EQ(report.quarantined.size(), 3u);
  EXPECT_EQ(report.quarantined[0].rank, 1);
  EXPECT_EQ(report.quarantined[0].code, ErrorCode::Truncated);
  EXPECT_EQ(report.quarantined[1].rank, 2);
  EXPECT_EQ(report.quarantined[1].code, ErrorCode::Corrupt);
  EXPECT_EQ(report.quarantined[2].rank, 3);
  EXPECT_EQ(report.quarantined[2].code, ErrorCode::Io);
  EXPECT_EQ(report.quarantined_ranks(), (std::vector<Rank>{1, 2, 3}));
  for (const auto& q : report.quarantined)
    EXPECT_FALSE(q.path.empty()) << "rank " << q.rank;

  ASSERT_EQ(loaded.num_ranks(), 4);
  EXPECT_TRUE(loaded.ranks[1].events.empty());
  EXPECT_TRUE(loaded.ranks[2].events.empty());
  EXPECT_TRUE(loaded.ranks[3].events.empty());
  EXPECT_FALSE(loaded.ranks[0].events.empty());
  // Rank 0 talked to quarantined peers, so pruning must have removed
  // something from its stream.
  EXPECT_GT(report.events_pruned, 0u);
  EXPECT_LT(loaded.ranks[0].events.size(),
            data_.traces.ranks[0].events.size());
}

TEST_F(ArchiveCorruptTest, PermissiveRecoveryIsDeterministicAndAnalyzable) {
  auto bytes = read_file_bytes(trace_path(2));
  bytes.resize(bytes.size() / 3);
  write_file_bytes(trace_path(2), bytes);

  ReadOptions serial;
  serial.permissive = true;
  serial.max_workers = 1;
  ReadOptions parallel;
  parallel.permissive = true;
  parallel.max_workers = 8;

  ReadReport rs, rp;
  const auto ls = arch_.read_traces(serial, &rs);
  const auto lp = arch_.read_traces(parallel, &rp);

  // Identical quarantine outcome and identical recovered collection,
  // independent of reader parallelism.
  ASSERT_EQ(rs.quarantined.size(), 1u);
  ASSERT_EQ(rp.quarantined.size(), 1u);
  EXPECT_EQ(rs.quarantined[0].rank, rp.quarantined[0].rank);
  EXPECT_EQ(rs.quarantined[0].code, rp.quarantined[0].code);
  EXPECT_EQ(rs.events_pruned, rp.events_pruned);
  ASSERT_EQ(ls.num_ranks(), lp.num_ranks());
  for (int r = 0; r < ls.num_ranks(); ++r)
    EXPECT_EQ(ls.ranks[static_cast<std::size_t>(r)],
              lp.ranks[static_cast<std::size_t>(r)])
        << "rank " << r;

  // The survivors stay analyzable end to end, and the severity cube is
  // bit-identical across serial/parallel reads and replays.
  const auto res_s = analysis::analyze_serial(ls);
  const auto res_p = analysis::analyze_parallel(lp);
  EXPECT_TRUE(res_s.cube.approx_equal(res_p.cube, 0.0));
}

TEST_F(ArchiveCorruptTest, StrictAndPermissiveAgreeOnCleanArchives) {
  ReadOptions opts;
  opts.permissive = true;
  ReadReport report;
  const auto permissive = arch_.read_traces(opts, &report);
  const auto strict = arch_.read_traces();
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(report.events_pruned, 0u);
  ASSERT_EQ(permissive.num_ranks(), strict.num_ranks());
  for (int r = 0; r < strict.num_ranks(); ++r)
    EXPECT_EQ(permissive.ranks[static_cast<std::size_t>(r)],
              strict.ranks[static_cast<std::size_t>(r)]);
}

}  // namespace
}  // namespace metascope::archive
