// End-to-end pipeline tests: application -> engine -> skewed clocks ->
// partial archives on separate file systems -> synchronization ->
// parallel analysis -> report. Assertions mirror the paper's headline
// observations (§5, Figures 6/7, Tables 1-2).
#include <gtest/gtest.h>

#include <filesystem>

#include "analysis/analyzer.hpp"
#include "archive/archive.hpp"
#include "clocksync/clock_condition.hpp"
#include "clocksync/correction.hpp"
#include "report/algebra.hpp"
#include "report/cubexml.hpp"
#include "report/render.hpp"
#include "simnet/presets.hpp"
#include "workloads/clockbench.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

namespace metascope {
namespace {

namespace fs = std::filesystem;

/// Runs the complete measurement + analysis pipeline on the VIOLA
/// experiment-1 setup, through real partial archives.
analysis::AnalysisResult full_pipeline(const std::string& base) {
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  auto data = workloads::run_experiment(topo, prog, cfg);

  // No shared file system between the three sites.
  const auto layout =
      archive::FileSystemLayout::per_metahost(base, topo.num_metahosts());
  const auto arch =
      archive::ExperimentArchive::create(topo, layout, "metatrace");
  arch.write_traces(topo, data.traces);

  auto tc = arch.read_traces();
  clocksync::synchronize(tc);
  return analysis::analyze_parallel(tc);
}

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest -j runs these cases as separate
    // processes concurrently, and a shared path would let one test's
    // SetUp wipe another's archive mid-run.
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    base_ = (fs::temp_directory_path() /
             (std::string("msc_integration_") + info->name()))
                .string();
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }
  std::string base_;
};

TEST_F(IntegrationTest, HeterogeneousRunShowsPaperPatterns) {
  const auto res = full_pipeline(base_);
  const auto& ps = res.patterns;
  const double total = res.cube.total_time();
  const double grid_ls =
      res.cube.metric_inclusive_total(ps.grid_late_sender) / total;
  const double grid_wb =
      res.cube.metric_inclusive_total(ps.grid_wait_barrier) / total;
  // Paper Fig. 6: Grid Late Sender 9.3 %, Grid Wait at Barrier 23.1 %.
  // Shape assertions: both prominent, barrier wait dominates.
  EXPECT_GT(grid_ls, 0.04);
  EXPECT_LT(grid_ls, 0.25);
  EXPECT_GT(grid_wb, 0.12);
  EXPECT_LT(grid_wb, 0.40);
  EXPECT_GT(grid_wb, grid_ls);
}

TEST_F(IntegrationTest, LateSenderConcentratedInCgIterationOnFhBrs) {
  const auto res = full_pipeline(base_);
  const auto& ps = res.patterns;
  // Call-path concentration (paper: "a major fraction of the Late Sender
  // pattern is concentrated in cgiteration()").
  double in_cg = 0.0;
  for (CallPathId c : res.cube.calls.preorder()) {
    if (res.cube.regions.name(res.cube.calls.node(c).region) ==
        "cgiteration")
      in_cg += res.cube.cnode_subtree_inclusive(ps.grid_late_sender, c) +
               res.cube.cnode_subtree_inclusive(ps.late_sender, c) -
               res.cube.cnode_subtree_inclusive(ps.grid_late_sender, c);
  }
  const double all = res.cube.metric_inclusive_total(ps.late_sender);
  EXPECT_GT(in_cg / all, 0.6);
  // Location concentration: most waiting on the faster FH-BRS cluster.
  double fh_brs = 0.0;
  double caesar = 0.0;
  for (Rank r = 0; r < res.cube.num_ranks(); ++r) {
    const auto name =
        res.cube.system.metahost(res.cube.system.metahost_of(r)).name;
    const double v = res.cube.rank_inclusive_total(ps.late_sender, r);
    if (name == "FH-BRS") fh_brs += v;
    if (name == "CAESAR") caesar += v;
  }
  EXPECT_GT(fh_brs, 2.0 * std::max(caesar, 1e-9));
}

TEST_F(IntegrationTest, BarrierWaitConcentratedInReadVelFieldOnXd1) {
  const auto res = full_pipeline(base_);
  const auto& ps = res.patterns;
  double in_readvel = 0.0;
  for (CallPathId c : res.cube.calls.preorder()) {
    if (res.cube.regions.name(res.cube.calls.node(c).region) ==
        "ReadVelFieldFromTrace")
      in_readvel +=
          res.cube.cnode_subtree_inclusive(ps.grid_wait_barrier, c);
  }
  const double all = res.cube.metric_inclusive_total(ps.grid_wait_barrier);
  EXPECT_GT(in_readvel / all, 0.8);
}

TEST_F(IntegrationTest, PairBreakdownPointsAtSlowCluster) {
  // Extension (paper §6 future work): the per-metahost-pair breakdown
  // shows FH-BRS waiting for CAESAR, not vice versa.
  const auto res = full_pipeline(base_);
  const auto& ps = res.patterns;
  // Metahost ids: 0 = CAESAR, 1 = FH-BRS, 2 = FZJ (env order).
  const double fh_waits_for_caesar = res.cube.pair_breakdown(
      ps.grid_late_sender, MetahostId{1}, MetahostId{0});
  const double caesar_waits_for_fh = res.cube.pair_breakdown(
      ps.grid_late_sender, MetahostId{0}, MetahostId{1});
  EXPECT_GT(fh_waits_for_caesar, 2.0 * std::max(caesar_waits_for_fh, 1e-9));
}

TEST_F(IntegrationTest, HomogeneousRunShiftsWaitStates) {
  // Paper Fig. 7: on the homogeneous IBM machine the barrier wait
  // collapses and the steering-path Late Sender grows.
  const auto topo_het = simnet::make_viola_experiment1();
  const auto topo_hom = simnet::make_ibm_power(32);
  const auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  auto het_data = workloads::run_experiment(topo_het, prog, cfg);
  clocksync::synchronize(het_data.traces);
  const auto het = analysis::analyze_parallel(het_data.traces);
  auto hom_data = workloads::run_experiment(topo_hom, prog, cfg);
  clocksync::synchronize(hom_data.traces);
  const auto hom = analysis::analyze_parallel(hom_data.traces);

  const auto& psh = het.patterns;
  const double het_wb =
      het.cube.metric_inclusive_total(psh.grid_wait_barrier) /
      het.cube.total_time();
  const double hom_wb =
      (hom.cube.metric_inclusive_total(hom.patterns.wait_barrier) +
       hom.cube.metric_inclusive_total(hom.patterns.grid_wait_barrier)) /
      hom.cube.total_time();
  EXPECT_LT(hom_wb, 0.5 * het_wb);

  auto steering_ls = [](const analysis::AnalysisResult& r) {
    double v = 0.0;
    for (CallPathId c : r.cube.calls.preorder()) {
      if (r.cube.regions.name(r.cube.calls.node(c).region) ==
          "getsteering")
        v += r.cube.cnode_subtree_inclusive(r.patterns.late_sender, c);
    }
    return v / r.cube.total_time();
  };
  EXPECT_GT(steering_ls(hom), 2.0 * std::max(steering_ls(het), 1e-6));

  // The homogeneous run has no grid patterns at all (single metahost).
  EXPECT_NEAR(
      hom.cube.metric_inclusive_total(hom.patterns.grid_wait_barrier), 0.0,
      1e-12);
  EXPECT_NEAR(
      hom.cube.metric_inclusive_total(hom.patterns.grid_late_sender), 0.0,
      1e-12);
}

TEST_F(IntegrationTest, SynchronizedPipelineSatisfiesClockCondition) {
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  auto data = workloads::run_experiment(topo, prog, cfg);
  clocksync::synchronize(data.traces);
  const auto rep = clocksync::check_clock_condition(data.traces);
  EXPECT_EQ(rep.violations, 0u);
}

TEST_F(IntegrationTest, CubeSurvivesXmlRoundTripThroughDisk) {
  const auto res = full_pipeline(base_);
  const std::string path = base_ + "/result.cubex";
  report::save_cube(path, res.cube);
  const report::Cube loaded = report::load_cube(path);
  EXPECT_TRUE(res.cube.approx_equal(loaded, 1e-15));
  // Rendering the reloaded cube still works.
  const std::string out = report::render_metric_tree(loaded);
  EXPECT_NE(out.find("Grid Wait at Barrier"), std::string::npos);
}

TEST_F(IntegrationTest, SkewedAndPerfectClockAnalysesAgreeClosely) {
  // The full chain (skewed clocks + hierarchical sync) must reproduce
  // the ground-truth (perfect clock) severities to within the residual
  // sync error times the number of waits.
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig skewed_cfg;
  auto skewed = workloads::run_experiment(topo, prog, skewed_cfg);
  clocksync::synchronize(skewed.traces);
  const auto a = analysis::analyze_serial(skewed.traces);

  workloads::ExperimentConfig perfect_cfg;
  perfect_cfg.perfect_clocks = true;
  perfect_cfg.measurement.scheme = tracing::SyncScheme::None;
  auto perfect = workloads::run_experiment(topo, prog, perfect_cfg);
  const auto b = analysis::analyze_serial(perfect.traces);

  const auto& ps = a.patterns;
  for (MetricId m : {ps.grid_late_sender, ps.grid_wait_barrier}) {
    const double va = a.cube.metric_inclusive_total(m);
    const double vb = b.cube.metric_inclusive_total(m);
    EXPECT_NEAR(va, vb, 0.05 * vb + 0.01) << a.cube.metrics.def(m).name;
  }
}

}  // namespace
}  // namespace metascope
