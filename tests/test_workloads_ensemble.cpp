// Tests for the ensemble-forecast workload: structure, pattern content
// on heterogeneous placements, and config-file integration.
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "common/error.hpp"
#include "simnet/topology.hpp"
#include "workloads/config.hpp"
#include "workloads/ensemble.hpp"
#include "workloads/experiment.hpp"

namespace metascope::workloads {
namespace {

/// One metahost per ensemble member, with member 2 on half-speed nodes.
simnet::Topology member_per_host(int members, int ranks_per_member) {
  simnet::Topology topo;
  for (int m = 0; m < members; ++m) {
    simnet::MetahostSpec spec;
    spec.name = "Site" + std::to_string(m);
    spec.num_nodes = ranks_per_member;
    spec.cpus_per_node = 1;
    spec.speed_factor = m == 2 ? 0.5 : 1.0;
    spec.internal = simnet::LinkSpec{20e-6, 0.5e-6, 1e9};
    topo.add_metahost(spec);
  }
  simnet::LinkSpec wan{900e-6, 4e-6, 1.25e9};
  wan.asymmetry = 0.06;
  topo.set_default_external(wan);
  for (int m = 0; m < members; ++m)
    topo.place_block(MetahostId{m}, ranks_per_member, 1);
  return topo;
}

analysis::AnalysisResult analyze_ensemble(const EnsembleConfig& cfg,
                                          const simnet::Topology& topo) {
  const auto prog = build_ensemble(cfg);
  ExperimentConfig xc;
  xc.perfect_clocks = true;
  xc.measurement.scheme = tracing::SyncScheme::None;
  const auto data = run_experiment(topo, prog, xc);
  return analysis::analyze_serial(data.traces);
}

TEST(Ensemble, ValidatesConfig) {
  EnsembleConfig bad;
  bad.members = 1;
  EXPECT_THROW(build_ensemble(bad), Error);
  bad = EnsembleConfig{};
  bad.cycles = 0;
  EXPECT_THROW(build_ensemble(bad), Error);
}

TEST(Ensemble, ProgramStructure) {
  EnsembleConfig cfg;
  const auto prog = build_ensemble(cfg);
  EXPECT_EQ(prog.num_ranks(), cfg.num_ranks());
  // member comms + leaders comm + world.
  EXPECT_EQ(prog.comms.size(),
            static_cast<std::size_t>(cfg.members) + 2);
  EXPECT_TRUE(prog.regions.contains("integrate_member"));
  EXPECT_TRUE(prog.regions.contains("deliver_forecast"));
}

TEST(Ensemble, RunsOnHeterogeneousMetacomputer) {
  EnsembleConfig cfg;
  const auto topo = member_per_host(cfg.members, cfg.ranks_per_member);
  const auto res = analyze_ensemble(cfg, topo);
  EXPECT_GT(res.cube.total_time(), 0.0);
}

TEST(Ensemble, SlowMemberGatesTheGather) {
  // Member 2 runs at half speed; the root (member 0) must show (grid)
  // Early Reduce waiting for member 2's forecast.
  EnsembleConfig cfg;
  const auto topo = member_per_host(cfg.members, cfg.ranks_per_member);
  const auto res = analyze_ensemble(cfg, topo);
  const auto& ps = res.patterns;
  const double er =
      res.cube.metric_inclusive_total(ps.early_reduce);
  EXPECT_GT(er, 0.5 * cfg.cycles * cfg.timesteps * cfg.step_work);
  // All of it is grid (leaders live on different metahosts) and sits at
  // the root.
  EXPECT_NEAR(res.cube.metric_total(ps.early_reduce), 0.0, 1e-9);
  EXPECT_NEAR(res.cube.rank_inclusive_total(ps.grid_early_reduce, 0), er,
              1e-9);
  // The pair breakdown names the slow member's metahost.
  EXPECT_GT(res.cube.pair_breakdown(ps.grid_early_reduce, MetahostId{0},
                                    MetahostId{2}),
            0.9 * er);
}

TEST(Ensemble, FastMembersWaitForNextCycle) {
  // While the root waits for member 2 and computes statistics, the fast
  // members already sit in the next cycle's Bcast: (grid) Late
  // Broadcast away from the root's metahost.
  EnsembleConfig cfg;
  const auto topo = member_per_host(cfg.members, cfg.ranks_per_member);
  const auto res = analyze_ensemble(cfg, topo);
  const auto& ps = res.patterns;
  const double lb =
      res.cube.metric_inclusive_total(ps.late_broadcast);
  EXPECT_GT(lb, 0.0);
  double off_root = 0.0;
  for (Rank r = cfg.ranks_per_member; r < cfg.num_ranks(); ++r)
    off_root += res.cube.rank_inclusive_total(ps.late_broadcast, r) +
                res.cube.rank_inclusive_total(ps.grid_late_broadcast, r);
  EXPECT_GT(off_root, 0.8 * lb);
}

TEST(Ensemble, MemberLocalAllreduceStaysLocal) {
  // The stability Allreduce runs on member communicators; with one
  // member per metahost it must never be classified as grid.
  EnsembleConfig cfg;
  const auto topo = member_per_host(cfg.members, cfg.ranks_per_member);
  const auto res = analyze_ensemble(cfg, topo);
  double grid_nxn_in_stability = 0.0;
  for (CallPathId c : res.cube.calls.preorder()) {
    if (res.cube.regions.name(res.cube.calls.node(c).region) ==
        "stability_check")
      grid_nxn_in_stability += res.cube.cnode_subtree_inclusive(
          res.patterns.grid_wait_nxn, c);
  }
  EXPECT_NEAR(grid_nxn_in_stability, 0.0, 1e-9);
}

TEST(Ensemble, HomogeneousRunBalances) {
  EnsembleConfig cfg;
  simnet::Topology topo;
  simnet::MetahostSpec spec;
  spec.name = "Uniform";
  spec.num_nodes = cfg.num_ranks();
  spec.cpus_per_node = 1;
  spec.internal = simnet::LinkSpec{20e-6, 0.5e-6, 1e9};
  topo.add_metahost(spec);
  topo.place_block(MetahostId{0}, cfg.num_ranks(), 1);
  const auto res = analyze_ensemble(cfg, topo);
  const double er = res.cube.metric_inclusive_total(
      res.patterns.early_reduce);
  // Without the slow member, the root's gather wait nearly vanishes.
  EXPECT_LT(er, 0.1 * cfg.cycles * cfg.timesteps * cfg.step_work);
}

TEST(Ensemble, ConfigFileIntegration) {
  const auto spec = parse_experiment(Json::parse(R"({
    "topology": {
      "metahosts": [
        {"name": "A", "nodes": 4, "cpus_per_node": 1},
        {"name": "B", "nodes": 4, "cpus_per_node": 1, "speed": 0.7}
      ],
      "external": {"latency_us": 900},
      "placement": [
        {"metahost": 0, "nodes": 4, "procs_per_node": 1},
        {"metahost": 1, "nodes": 4, "procs_per_node": 1}
      ]
    },
    "workload": {"kind": "ensemble", "members": 2, "ranks_per_member": 4,
                 "cycles": 2, "timesteps": 4},
    "sync": "hierarchical-two"
  })"));
  EXPECT_EQ(spec.program.num_ranks(), 8);
  auto data = run_experiment(spec.topology, spec.program, spec.config);
  EXPECT_GT(data.exec.stats.collectives, 0u);
}

TEST(Ensemble, ConfigRankMismatchRejected) {
  EXPECT_THROW(parse_experiment(Json::parse(R"({
    "topology": {"preset": "ibm-power", "procs": 9},
    "workload": {"kind": "ensemble", "members": 2, "ranks_per_member": 4}
  })")),
               Error);
}

}  // namespace
}  // namespace metascope::workloads
