#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace metascope {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(1.0, -1.0), Error);
}

TEST(Rng, UniformMeanNearCenter) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(13);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, NormalAtLeastRespectsFloor) {
  Rng rng(19);
  for (int i = 0; i < 20000; ++i)
    EXPECT_GE(rng.normal_at_least(1.0, 5.0, 0.25), 0.25);
}

TEST(Rng, NormalAtLeastDegenerateParametersClamp) {
  Rng rng(19);
  // Mean far below the floor: resampling gives up and clamps.
  EXPECT_GE(rng.normal_at_least(-100.0, 0.001, 0.5), 0.5);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(2.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(23);
  EXPECT_THROW(rng.exponential(0.0), Error);
}

TEST(Rng, LognormalMomentMatched) {
  Rng rng(29);
  RunningStats s;
  for (int i = 0; i < 400000; ++i)
    s.add(rng.lognormal_with_moments(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng root(31);
  Rng a = root.split(1);
  Rng b = root.split(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng r1(31);
  Rng r2(31);
  Rng a = r1.split(42);
  Rng b = r2.split(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysInRangeAndVaries) {
  Rng rng(GetParam());
  RunningStats s;
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    s.add(u);
  }
  EXPECT_GT(s.stddev(), 0.2);
  EXPECT_LT(s.stddev(), 0.4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 2ULL, 42ULL,
                                           0xFFFFFFFFFFFFFFFFULL,
                                           0xDEADBEEFULL));

}  // namespace
}  // namespace metascope
