// Engine-level sub-communicator semantics: disjoint groups must progress
// independently (a slow group's barrier cannot stall another group), and
// nested communicator patterns (world + groups + leader comm) must
// resolve — the structure every coupled multi-physics code relies on.
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "common/error.hpp"
#include "simmpi/engine.hpp"
#include "workloads/experiment.hpp"

namespace metascope::simmpi {
namespace {

using simnet::LinkSpec;
using simnet::MetahostSpec;
using simnet::Topology;

Topology flat8() {
  Topology topo;
  MetahostSpec a;
  a.name = "A";
  a.num_nodes = 8;
  a.cpus_per_node = 1;
  a.internal = LinkSpec{10e-6, 0.0, 1e9};
  topo.add_metahost(a);
  topo.place_block(MetahostId{0}, 8, 1);
  return topo;
}

TEST(SubComm, DisjointBarriersDoNotCouple) {
  ProgramBuilder b(8);
  const CommId left = b.comms().create("left", {0, 1, 2, 3});
  const CommId right = b.comms().create("right", {4, 5, 6, 7});
  // Left group barriers immediately; right group computes 1 s first.
  for (Rank r = 0; r < 4; ++r) b.on(r).enter("m").barrier(left).exit();
  for (Rank r = 4; r < 8; ++r)
    b.on(r).enter("m").compute(1.0).barrier(right).exit();
  const auto res = execute(flat8(), b.take());
  // Left finishes in microseconds, independent of the right group.
  for (Rank r = 0; r < 4; ++r) EXPECT_LT(res.rank_end[r].s, 0.001);
  for (Rank r = 4; r < 8; ++r) EXPECT_GT(res.rank_end[r].s, 1.0);
}

TEST(SubComm, GroupCollectivesInterleaveWithWorldCollectives) {
  ProgramBuilder b(8);
  const CommId left = b.comms().create("left", {0, 1, 2, 3});
  const CommId right = b.comms().create("right", {4, 5, 6, 7});
  for (Rank r = 0; r < 8; ++r) {
    auto& c = b.on(r);
    c.enter("m");
    c.allreduce(64.0, r < 4 ? left : right);  // group phase
    c.barrier();                              // world phase
    c.allreduce(64.0, r < 4 ? left : right);  // group phase again
    c.exit();
  }
  EXPECT_NO_THROW(execute(flat8(), b.take()));
}

TEST(SubComm, LeaderCommBridgesGroups) {
  // Leaders (0, 4) gather to rank 0 after their group barriers.
  ProgramBuilder b(8);
  const CommId left = b.comms().create("left", {0, 1, 2, 3});
  const CommId right = b.comms().create("right", {4, 5, 6, 7});
  const CommId leaders = b.comms().create("leaders", {0, 4});
  for (Rank r = 0; r < 8; ++r) {
    auto& c = b.on(r);
    c.enter("m");
    if (r >= 4) c.compute(0.5);  // right group is slower
    c.barrier(r < 4 ? left : right);
    if (r == 0 || r == 4) c.gather(0, 1024.0, leaders);
    c.exit();
  }
  const auto res = execute(flat8(), b.take());
  // Rank 0 (gather root) must wait for the slow group's leader.
  EXPECT_GT(res.rank_end[0].s, 0.5);
  // Non-leader left ranks finish immediately after their own barrier.
  EXPECT_LT(res.rank_end[1].s, 0.001);
}

TEST(SubComm, RootMustBeGlobalRankInsideComm) {
  ProgramBuilder b(8);
  const CommId right = b.comms().create("right", {4, 5, 6, 7});
  // Root 5 is a member: fine even though its comm-local rank is 1.
  for (Rank r = 4; r < 8; ++r) b.on(r).enter("m").bcast(5, 64.0, right).exit();
  for (Rank r = 0; r < 4; ++r) b.on(r).enter("m").exit();
  const auto prog = b.take();
  EXPECT_NO_THROW(execute(flat8(), prog));
}

TEST(SubComm, SameSequenceDifferentCommsMatchIndependently) {
  // Messages with an identical tag on different communicators must not
  // cross-match: the communicator is part of the matching channel.
  ProgramBuilder b2(4);
  const CommId sub = b2.comms().create("sub", {0, 1});
  b2.on(0).enter("m").send(1, 7, 100.0).send(1, 7, 200.0, sub).exit();
  b2.on(1).enter("m").recv(0, 7, sub).recv(0, 7).exit();
  b2.on(2).enter("m").exit();
  b2.on(3).enter("m").exit();
  Topology topo;
  MetahostSpec a;
  a.name = "A";
  a.num_nodes = 4;
  a.cpus_per_node = 1;
  a.internal = LinkSpec{10e-6, 0.0, 1e9};
  topo.add_metahost(a);
  topo.place_block(MetahostId{0}, 4, 1);
  const auto res = execute(topo, b2.take());
  // Receiver's first recv (sub comm) gets the 200-byte message even
  // though the 100-byte world message was sent first.
  const auto& events = res.per_rank[1];
  std::vector<double> recv_bytes;
  for (const auto& e : events)
    if (e.type == ExecEventType::Recv) recv_bytes.push_back(e.bytes);
  ASSERT_EQ(recv_bytes.size(), 2u);
  EXPECT_DOUBLE_EQ(recv_bytes[0], 200.0);
  EXPECT_DOUBLE_EQ(recv_bytes[1], 100.0);
}

TEST(SubComm, AnalysisSeesGroupCollectiveInstances) {
  // Two disjoint 4-rank allreduces = two collective instances, not one.
  ProgramBuilder b(8);
  const CommId left = b.comms().create("left", {0, 1, 2, 3});
  const CommId right = b.comms().create("right", {4, 5, 6, 7});
  for (Rank r = 0; r < 8; ++r)
    b.on(r).enter("m").allreduce(64.0, r < 4 ? left : right).exit();
  const auto prog = b.take();
  const auto topo = flat8();
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  const auto res = analysis::analyze_serial(data.traces);
  EXPECT_EQ(res.stats.collective_instances, 2u);
  const auto par = analysis::analyze_parallel(data.traces);
  EXPECT_EQ(par.stats.collective_instances, 2u);
  EXPECT_TRUE(res.cube.approx_equal(par.cube, 1e-12));
}

}  // namespace
}  // namespace metascope::simmpi
