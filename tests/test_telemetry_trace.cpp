// Flight recorder + Chrome-trace exporter + time-resolved sampler:
// ring wrap-around drop accounting, pool lifecycle event pairing, the
// exporter's structural guarantees (balanced B/E per thread track,
// non-decreasing timestamps, explicit drop counts), the deadlock
// postmortem dump, sampler time series, and the versioned snapshot's
// run-metadata section.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "common/error.hpp"
#include "common/parallel.hpp"
#include "simmpi/program.hpp"
#include "simnet/presets.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/span.hpp"
#include "telemetry/trace_export.hpp"
#include "workloads/experiment.hpp"

namespace metascope::telemetry {
namespace {

using tracing::EventType;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset();  // retires all rings; threads re-register on next record
    Recorder::instance().configure(Recorder::kDefaultRingCapacity);
    Recorder::instance().set_enabled(true);
  }
  void TearDown() override {
    stop_sampler();
    Recorder::instance().set_enabled(false);
    reset();
  }
};

// --- ring buffer semantics ---------------------------------------------

TEST_F(TraceTest, TinyRingDropsOldestAndCountsThem) {
  Recorder::instance().configure(4);
  for (std::uint32_t i = 0; i < 100; ++i)
    record_event(TraceEventKind::Mark, "wrap", i);
  const auto logs = Recorder::instance().snapshot();
  ASSERT_EQ(logs.size(), 1u);  // only this thread recorded
  EXPECT_EQ(logs[0].events.size(), 4u);
  EXPECT_EQ(logs[0].dropped, 96u);
  // The retained tail is the *newest* events, in order.
  EXPECT_EQ(logs[0].events.front().id, 96u);
  EXPECT_EQ(logs[0].events.back().id, 99u);
}

TEST_F(TraceTest, DisabledRecorderKeepsNothing) {
  Recorder::instance().set_enabled(false);
  record_event(TraceEventKind::Mark, "ignored");
  const auto logs = Recorder::instance().snapshot();
  std::size_t total = 0;
  for (const auto& log : logs) total += log.events.size();
  EXPECT_EQ(total, 0u);
}

TEST_F(TraceTest, ThreadLabelSurvivesRegistration) {
  set_thread_label("test thread");
  record_event(TraceEventKind::Mark, "labeled");
  const auto logs = Recorder::instance().snapshot();
  ASSERT_EQ(logs.size(), 1u);
  EXPECT_EQ(logs[0].label, "test thread");
}

// --- pool lifecycle events ---------------------------------------------

TEST_F(TraceTest, PoolRunPairsEveryTaskBeginWithAnEnd) {
  RecordingObserver obs("stage");
  constexpr std::size_t kTasks = 16;
  parallel_for(
      kTasks, 2,
      [](std::size_t) {
        // enough work that both workers participate
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      },
      &obs);
  std::size_t begins = 0, ends = 0;
  for (const auto& log : Recorder::instance().snapshot()) {
    std::size_t depth = 0;
    for (const TraceEvent& e : log.events) {
      if (e.kind == TraceEventKind::TaskBegin) {
        ++begins;
        ++depth;
      } else if (e.kind == TraceEventKind::TaskEnd) {
        ++ends;
        ASSERT_GT(depth, 0u) << "end without begin on one thread";
        --depth;
      }
    }
    EXPECT_EQ(depth, 0u);
    // Timestamps on one ring are monotone: one writer, steady clock.
    for (std::size_t i = 1; i < log.events.size(); ++i)
      EXPECT_GE(log.events[i].ts_ns, log.events[i - 1].ts_ns);
  }
  EXPECT_EQ(begins, kTasks);
  EXPECT_EQ(ends, kTasks);
}

// --- Chrome trace export -----------------------------------------------

/// Asserts the exporter's structural contract: per thread track, "B"
/// and "E" nest and balance, and timestamps never decrease (metadata
/// "M" events carry no ts and are skipped).
void expect_structurally_valid(const Json& trace) {
  ASSERT_TRUE(trace.has("traceEvents"));
  std::map<std::int64_t, std::size_t> depth;
  std::map<std::int64_t, double> last_ts;
  for (const Json& e : trace.at("traceEvents").as_array()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") continue;
    const std::int64_t tid = e.at("tid").as_int();
    const double ts = e.at("ts").as_number();
    auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "ts regressed on tid " << tid;
    }
    last_ts[tid] = ts;
    if (ph == "B") {
      ++depth[tid];
    } else if (ph == "E") {
      ASSERT_GT(depth[tid], 0u) << "orphan E on tid " << tid;
      --depth[tid];
    } else {
      EXPECT_EQ(ph, "i") << "unexpected phase " << ph;
    }
  }
  for (const auto& [tid, d] : depth)
    EXPECT_EQ(d, 0u) << "unclosed B on tid " << tid;
  ASSERT_TRUE(trace.has("otherData"));
  EXPECT_TRUE(trace.at("otherData").has("ring_capacity"));
  EXPECT_TRUE(trace.at("otherData").has("dropped_events"));
  EXPECT_TRUE(trace.at("otherData").has("emitted_events"));
}

TEST_F(TraceTest, FanoutStrideCapsLargeFanouts) {
  // Dense up to 256 items, then every stride-th so ~256 slices survive.
  EXPECT_EQ(RecordingObserver::fanout_stride(1), 1u);
  EXPECT_EQ(RecordingObserver::fanout_stride(256), 1u);
  EXPECT_EQ(RecordingObserver::fanout_stride(257), 2u);
  EXPECT_EQ(RecordingObserver::fanout_stride(1024), 4u);
  EXPECT_LE(4096u / RecordingObserver::fanout_stride(4096), 256u);
}

TEST_F(TraceTest, DecimatedObserverKeepsBeginEndPaired) {
  RecordingObserver obs("stage", 3);
  EXPECT_EQ(obs.item_stride(), 3u);
  for (std::size_t task = 0; task < 10; ++task) {
    obs.on_task_begin(task);
    obs.on_task_end(task, /*suspended=*/false);
  }
  const auto logs = Recorder::instance().snapshot();
  ASSERT_EQ(logs.size(), 1u);
  // Only tasks 0, 3, 6, 9 survive, and every begin still has its end.
  ASSERT_EQ(logs[0].events.size(), 8u);
  for (std::size_t i = 0; i < logs[0].events.size(); i += 2) {
    const TraceEvent& b = logs[0].events[i];
    const TraceEvent& e = logs[0].events[i + 1];
    EXPECT_EQ(b.kind, TraceEventKind::TaskBegin);
    EXPECT_EQ(e.kind, TraceEventKind::TaskEnd);
    EXPECT_EQ(b.id, e.id);
    EXPECT_EQ(b.id % 3, 0u);
  }
}

TEST_F(TraceTest, FullPipelineExportIsStructurallyValid) {
  set_thread_label("pipeline");
  const auto topo = simnet::make_viola_experiment1();
  const int nranks = topo.num_ranks();
  simmpi::ProgramBuilder b(nranks);
  for (Rank r = 0; r < nranks; ++r) b.on(r).enter("main");
  for (int s = 0; s < 6; ++s) {  // ring shifts: suspends are guaranteed
    for (Rank r = 0; r < nranks; ++r) {
      b.on(r).enter("ring").send((r + 1) % nranks, s, 2048.0);
      b.on(r).recv((r + nranks - 1) % nranks, s).exit();
    }
  }
  for (Rank r = 0; r < nranks; ++r) b.on(r).exit();
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  auto data = workloads::run_experiment(topo, b.take(), cfg);
  analysis::ReplayOptions opts;
  opts.max_workers = 3;
  analysis::analyze_parallel(data.traces, opts);

  const Json trace = chrome_trace_json();
  expect_structurally_valid(trace);
  // The replay workers and the labeled main thread all show up as
  // named tracks.
  bool saw_pipeline = false, saw_replay_worker = false;
  for (const Json& e : trace.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() != "M" ||
        e.at("name").as_string() != "thread_name")
      continue;
    const std::string& name = e.at("args").at("name").as_string();
    if (name == "pipeline") saw_pipeline = true;
    if (name.rfind("replay worker", 0) == 0) saw_replay_worker = true;
  }
  EXPECT_TRUE(saw_pipeline);
  EXPECT_TRUE(saw_replay_worker);
  EXPECT_GT(trace.at("otherData").at("emitted_events").as_int(), 0);
}

TEST_F(TraceTest, WrappedRingStillExportsBalancedAndReportsDrops) {
  Recorder::instance().configure(5);
  set_thread_label("wrappy");
  // 20 begin/end pairs through a 5-slot ring: the retained tail starts
  // mid-pair, so the exporter must skip the stranded E and still close
  // everything it opens.
  for (std::uint32_t i = 0; i < 20; ++i) {
    record_event(TraceEventKind::TaskBegin, "work", i);
    record_event(TraceEventKind::TaskEnd, "work", i);
  }
  record_event(TraceEventKind::TaskBegin, "unfinished", 99);  // never ends
  const Json trace = chrome_trace_json();
  expect_structurally_valid(trace);
  EXPECT_GT(trace.at("otherData").at("dropped_events").at("wrappy").as_int(),
            0);
}

// --- deadlock postmortem -----------------------------------------------

TEST_F(TraceTest, DeadlockedReplayDumpsPostmortem) {
  const auto topo = simnet::make_ibm_power(2);
  simmpi::ProgramBuilder b(2);
  b.on(0).enter("main").send(1, 5, 64.0).exit();
  b.on(1).enter("main").recv(0, 5).exit();
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  auto tc = workloads::run_experiment(topo, b.take(), cfg).traces;

  // Drop the Send: rank 1's receive can never be satisfied and the
  // replay deadlocks.
  auto& events = tc.ranks[0].events;
  const auto it = std::find_if(
      events.begin(), events.end(),
      [](const auto& e) { return e.type == EventType::Send; });
  ASSERT_NE(it, events.end());
  events.erase(it);

  ::testing::internal::CaptureStderr();
  EXPECT_THROW(analysis::analyze_parallel(tc), Error);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("flight recorder postmortem"), std::string::npos);
  EXPECT_NE(err.find("replay"), std::string::npos);

  // The report itself names the stage and shows the suspend.
  const std::string report = postmortem_report(8);
  EXPECT_NE(report.find("replay"), std::string::npos);
  EXPECT_NE(report.find("suspend"), std::string::npos);
}

TEST_F(TraceTest, PostmortemDisabledByOption) {
  const auto topo = simnet::make_ibm_power(2);
  simmpi::ProgramBuilder b(2);
  b.on(0).enter("main").send(1, 5, 64.0).exit();
  b.on(1).enter("main").recv(0, 5).exit();
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  auto tc = workloads::run_experiment(topo, b.take(), cfg).traces;
  auto& events = tc.ranks[0].events;
  events.erase(std::find_if(
      events.begin(), events.end(),
      [](const auto& e) { return e.type == EventType::Send; }));

  analysis::ReplayOptions opts;
  opts.postmortem_events = 0;
  ::testing::internal::CaptureStderr();
  EXPECT_THROW(analysis::analyze_parallel(tc, opts), Error);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("flight recorder postmortem"), std::string::npos);
}

// --- time-resolved sampler ---------------------------------------------

TEST_F(TraceTest, SamplerCollectsMonotoneSeries) {
  counter("trace.sampled").add(1);
  start_sampler(2);
  EXPECT_TRUE(sampler_running());
  for (int i = 0; i < 5; ++i) {
    counter("trace.sampled").add(10);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop_sampler();
  EXPECT_FALSE(sampler_running());

  const Json series = sampler_json();
  ASSERT_FALSE(series.is_null());
  EXPECT_EQ(series.at("interval_ms").as_int(), 2);
  EXPECT_FALSE(series.at("truncated").as_bool());
  const auto& samples = series.at("samples").as_array();
  ASSERT_GE(samples.size(), 1u);
  double prev_t = -1.0;
  for (const Json& s : samples) {
    const double t = s.at("t_s").as_number();
    EXPECT_GE(t, prev_t);
    prev_t = t;
    ASSERT_TRUE(s.has("counters"));
  }
  // The series lands in the snapshot document.
  const Json snap = snapshot_json();
  ASSERT_TRUE(snap.has("timeseries"));
  EXPECT_EQ(snap.at("timeseries"), series);
}

TEST_F(TraceTest, SamplerNeverRunMeansNoTimeseriesSection) {
  EXPECT_TRUE(sampler_json().is_null());
  EXPECT_FALSE(snapshot_json().has("timeseries"));
}

// --- versioned snapshot + run metadata ---------------------------------

TEST_F(TraceTest, SnapshotCarriesSchemaVersionAndRunMetadata) {
  Json snap = snapshot_json();
  EXPECT_EQ(snap.at("schema_version").as_int(), kSnapshotSchemaVersion);
  EXPECT_FALSE(snap.has("run"));  // nothing attached yet

  Json run{Json::Object{}};
  run.set("workload", "unit-test");
  run.set("seed", 42);
  run.set("ranks", 8);
  run.set("workers", 2);
  set_run_metadata(std::move(run));
  snap = snapshot_json();
  ASSERT_TRUE(snap.has("run"));
  EXPECT_EQ(snap.at("run").at("workload").as_string(), "unit-test");
  EXPECT_EQ(snap.at("run").at("seed").as_int(), 42);
  EXPECT_EQ(snap.at("run").at("ranks").as_int(), 8);
  EXPECT_EQ(snap.at("run").at("workers").as_int(), 2);

  reset();  // clears run metadata along with everything else
  EXPECT_FALSE(snapshot_json().has("run"));
}

}  // namespace
}  // namespace metascope::telemetry
