// Progress reporter + leveled logging: the rate-limit window (boundary
// fractions always print, mid-window updates are dropped, the window
// reopens after 100 ms), the off-by-default contract, byte-stability of
// progress output against the telemetry enable switch, --log-level
// parsing, and MSC_LOG threshold filtering.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "common/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/snapshot.hpp"

namespace metascope::telemetry {
namespace {

class ProgressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset();
    set_progress_enabled(false);
  }
  void TearDown() override {
    set_progress_enabled(false);
    set_log_level(LogLevel::Warn);
  }

  /// Runs `body` with progress enabled and returns what it wrote to
  /// stderr.
  template <typename F>
  static std::string captured(F&& body) {
    set_progress_enabled(true);
    ::testing::internal::CaptureStderr();
    body();
    set_progress_enabled(false);
    return ::testing::internal::GetCapturedStderr();
  }
};

TEST_F(ProgressTest, DisabledEmitsNothing) {
  ::testing::internal::CaptureStderr();
  progress("quiet", 0.0);
  progress("quiet", 0.5);
  progress("quiet", 1.0);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(ProgressTest, BoundariesAlwaysPrintMidWindowUpdatesDrop) {
  const std::string out = captured([] {
    progress("stage", 0.0);  // entry boundary: always prints
    progress("stage", 0.3);  // < 100 ms after the boundary: dropped
    progress("stage", 0.6);  // likewise
    progress("stage", 1.0);  // completion boundary: always prints
  });
  EXPECT_EQ(out,
            "[msc   0%] stage\n"
            "[msc 100%] stage\n");
}

TEST_F(ProgressTest, WindowReopensAfterMinGap) {
  const std::string out = captured([] {
    progress("slow", 0.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    progress("slow", 0.5);  // window elapsed: accepted
    progress("slow", 0.7);  // back inside the window: dropped
  });
  EXPECT_EQ(out,
            "[msc   0%] slow\n"
            "[msc  50%] slow\n");
}

TEST_F(ProgressTest, FractionIsClamped) {
  const std::string out = captured([] {
    progress("clamp", -0.5);  // clamps to 0.0 — an entry boundary
    progress("clamp", 1.5);   // clamps to 1.0 — a completion boundary
  });
  EXPECT_EQ(out,
            "[msc   0%] clamp\n"
            "[msc 100%] clamp\n");
}

// Progress output is a user-facing signal, independent of the metrics
// enable switch: disabling telemetry must not change a single byte.
TEST_F(ProgressTest, OutputBytesUnchangedWhenTelemetryDisabled) {
  const std::string with_telemetry = captured([] {
    progress("stable", 0.0);
    progress("stable", 1.0);
  });
  set_enabled(false);
  const std::string without_telemetry = captured([] {
    progress("stable", 0.0);
    progress("stable", 1.0);
  });
  set_enabled(true);
  EXPECT_EQ(with_telemetry, without_telemetry);
  EXPECT_EQ(with_telemetry,
            "[msc   0%] stable\n"
            "[msc 100%] stable\n");
}

// --- leveled logging ---------------------------------------------------

TEST_F(ProgressTest, ParseLogLevelAcceptsKnownNamesOnly) {
  LogLevel lv = LogLevel::Off;
  EXPECT_TRUE(parse_log_level("debug", lv));
  EXPECT_EQ(lv, LogLevel::Debug);
  EXPECT_TRUE(parse_log_level("info", lv));
  EXPECT_EQ(lv, LogLevel::Info);
  EXPECT_TRUE(parse_log_level("warn", lv));
  EXPECT_EQ(lv, LogLevel::Warn);
  EXPECT_TRUE(parse_log_level("error", lv));
  EXPECT_EQ(lv, LogLevel::Error);
  EXPECT_TRUE(parse_log_level("off", lv));
  EXPECT_EQ(lv, LogLevel::Off);

  lv = LogLevel::Warn;
  EXPECT_FALSE(parse_log_level("verbose", lv));
  EXPECT_EQ(lv, LogLevel::Warn);  // untouched on failure
  EXPECT_FALSE(parse_log_level("", lv));
  EXPECT_FALSE(parse_log_level("Debug", lv));  // case-sensitive
}

TEST_F(ProgressTest, LogThresholdFiltersBelowLevel) {
  set_log_level(LogLevel::Warn);
  ::testing::internal::CaptureStderr();
  MSC_DEBUG("dropped debug");
  MSC_INFO("dropped info");
  MSC_WARN("kept warn");
  MSC_ERROR("kept error");
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("WARN] kept warn"), std::string::npos);
  EXPECT_NE(out.find("ERROR] kept error"), std::string::npos);
}

TEST_F(ProgressTest, LogLevelOffSilencesEverything) {
  set_log_level(LogLevel::Off);
  ::testing::internal::CaptureStderr();
  MSC_DEBUG("a");
  MSC_INFO("b");
  MSC_WARN("c");
  MSC_ERROR("d");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace metascope::telemetry
