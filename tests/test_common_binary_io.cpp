#include "common/binary_io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace metascope {
namespace {

TEST(BinaryIo, FixedWidthRoundTrip) {
  BufWriter w;
  w.put_u8(0xAB);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_f64(-1234.5678);
  BufReader r(w.data());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_DOUBLE_EQ(r.get_f64(), -1234.5678);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryIo, VarintBoundaries) {
  BufWriter w;
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  (1ULL << 32) - 1,
                                  1ULL << 32,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (auto v : values) w.put_varint(v);
  BufReader r(w.data());
  for (auto v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryIo, VarintIsCompactForSmallValues) {
  BufWriter w;
  w.put_varint(5);
  EXPECT_EQ(w.size(), 1u);
  w.clear();
  w.put_varint(300);
  EXPECT_EQ(w.size(), 2u);
}

TEST(BinaryIo, SignedVarintRoundTrip) {
  BufWriter w;
  const std::int64_t values[] = {0,
                                 -1,
                                 1,
                                 -64,
                                 63,
                                 -65,
                                 64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (auto v : values) w.put_svarint(v);
  BufReader r(w.data());
  for (auto v : values) EXPECT_EQ(r.get_svarint(), v);
}

TEST(BinaryIo, StringRoundTrip) {
  BufWriter w;
  w.put_string("");
  w.put_string("hello world");
  w.put_string(std::string("\x00\x01\xFF", 3));
  BufReader r(w.data());
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), "hello world");
  EXPECT_EQ(r.get_string(), std::string("\x00\x01\xFF", 3));
}

TEST(BinaryIo, ReadPastEndThrows) {
  BufWriter w;
  w.put_u8(1);
  BufReader r(w.data());
  r.get_u8();
  EXPECT_THROW(r.get_u8(), Error);
  EXPECT_THROW(r.get_u32(), Error);
  EXPECT_THROW(r.get_varint(), Error);
  EXPECT_THROW(r.get_string(), Error);
}

TEST(BinaryIo, TruncatedStringThrows) {
  BufWriter w;
  w.put_varint(100);  // length prefix without the payload
  BufReader r(w.data());
  EXPECT_THROW(r.get_string(), Error);
}

TEST(BinaryIo, MalformedVarintThrows) {
  // 11 continuation bytes exceed the 64-bit budget.
  std::vector<std::uint8_t> bad(11, 0x80);
  BufReader r(bad.data(), bad.size());
  EXPECT_THROW(r.get_varint(), Error);
}

TEST(BinaryIo, SpecialFloats) {
  BufWriter w;
  w.put_f64(std::numeric_limits<double>::infinity());
  w.put_f64(-0.0);
  w.put_f64(std::numeric_limits<double>::denorm_min());
  BufReader r(w.data());
  EXPECT_EQ(r.get_f64(), std::numeric_limits<double>::infinity());
  const double neg_zero = r.get_f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.get_f64(), std::numeric_limits<double>::denorm_min());
}

TEST(BinaryIo, FuzzRoundTrip) {
  Rng rng(99);
  for (int iter = 0; iter < 50; ++iter) {
    BufWriter w;
    std::vector<std::uint64_t> vals;
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t v = rng.next_u64() >> (rng.uniform_index(64));
      vals.push_back(v);
      w.put_varint(v);
    }
    BufReader r(w.data());
    for (auto v : vals) ASSERT_EQ(r.get_varint(), v);
    ASSERT_TRUE(r.at_end());
  }
}

TEST(BinaryIo, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "msc_bin_test.bin").string();
  std::vector<std::uint8_t> bytes{1, 2, 3, 255, 0, 128};
  write_file_bytes(path, bytes);
  EXPECT_EQ(read_file_bytes(path), bytes);
  std::filesystem::remove(path);
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW(read_file_bytes("/nonexistent/x.bin"), Error);
}

TEST(Decoder, GetRawBorrowsWithoutCopying) {
  BufWriter w;
  w.put_u8(7);
  w.put_bytes("abcdef", 6);
  Decoder d(w.data());
  EXPECT_EQ(d.get_u8(), 7);
  const std::uint8_t* p = d.get_raw(6, "payload");
  // The pointer aims into the decoder's own buffer — zero-copy.
  EXPECT_EQ(p, w.data().data() + 1);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(p), 6), "abcdef");
  EXPECT_TRUE(d.at_end());
}

TEST(Decoder, GetRawPastEndIsTruncated) {
  const std::vector<std::uint8_t> bytes{1, 2, 3};
  Decoder d(bytes);
  try {
    (void)d.get_raw(4, "payload");
    FAIL() << "expected Truncated";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Truncated) << e.what();
  }
  // Zero bytes from an empty tail is fine.
  Decoder d2(bytes);
  (void)d2.get_raw(3, "payload");
  (void)d2.get_raw(0, "nothing");
  EXPECT_TRUE(d2.at_end());
}

TEST(Decoder, ExpectVersionInAcceptsRangeRejectsOutside) {
  const auto encode_version = [](std::uint32_t v) {
    BufWriter w;
    w.put_u32(v);
    return w.data();
  };
  for (const std::uint32_t v : {1u, 2u, 3u}) {
    const auto bytes = encode_version(v);
    Decoder d(bytes);
    EXPECT_EQ(d.expect_version_in(1, 3, "test file"), v);
  }
  for (const std::uint32_t v : {0u, 4u, 99u}) {
    const auto bytes = encode_version(v);
    Decoder d(bytes);
    try {
      (void)d.expect_version_in(1, 3, "test file");
      FAIL() << "expected VersionMismatch for version " << v;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::VersionMismatch) << e.what();
    }
  }
}

TEST(MappedFile, MappedAndFallbackViewsAreIdentical) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "msc_mmap_test.bin").string();
  std::vector<std::uint8_t> bytes(1000);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    bytes[i] = static_cast<std::uint8_t>(i * 31 + 7);
  write_file_bytes(path, bytes);

  const MappedFile mapped = MappedFile::open(path, /*allow_mmap=*/true);
  const MappedFile copied = MappedFile::open(path, /*allow_mmap=*/false);
  EXPECT_FALSE(copied.mapped());
  ASSERT_EQ(mapped.size(), bytes.size());
  ASSERT_EQ(copied.size(), bytes.size());
  EXPECT_EQ(std::vector<std::uint8_t>(mapped.data(),
                                      mapped.data() + mapped.size()),
            bytes);
  EXPECT_EQ(std::vector<std::uint8_t>(copied.data(),
                                      copied.data() + copied.size()),
            bytes);
  std::filesystem::remove(path);
}

TEST(MappedFile, ZeroLengthFileYieldsEmptyView) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "msc_mmap_empty.bin")
          .string();
  write_file_bytes(path, {});
  for (const bool allow_mmap : {true, false}) {
    const MappedFile f = MappedFile::open(path, allow_mmap);
    EXPECT_EQ(f.size(), 0u);
    EXPECT_FALSE(f.mapped());  // mmap rejects length 0; no mapping made
  }
  std::filesystem::remove(path);
}

TEST(MappedFile, MissingFileThrowsIoWithPath) {
  try {
    (void)MappedFile::open("/nonexistent/msc.bin");
    FAIL() << "expected Io error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::Io) << e.what();
    EXPECT_EQ(e.context().path, "/nonexistent/msc.bin");
  }
}

TEST(MappedFile, MoveTransfersTheView) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "msc_mmap_move.bin").string();
  write_file_bytes(path, {9, 8, 7});
  MappedFile a = MappedFile::open(path);
  MappedFile b = std::move(a);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b.data()[0], 9);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): reset state
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace metascope
