#include "report/render.hpp"

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "common/error.hpp"
#include "simnet/presets.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

namespace metascope::report {
namespace {

const analysis::AnalysisResult& metatrace_result() {
  static const analysis::AnalysisResult res = [] {
    const auto topo = simnet::make_viola_experiment1();
    const auto prog = workloads::build_metatrace();
    workloads::ExperimentConfig cfg;
    cfg.perfect_clocks = true;
    cfg.measurement.scheme = tracing::SyncScheme::None;
    const auto data = workloads::run_experiment(topo, prog, cfg);
    return analysis::analyze_serial(data.traces);
  }();
  return res;
}

TEST(SeverityMarker, Bands) {
  EXPECT_EQ(severity_marker(0.0), '.');
  EXPECT_EQ(severity_marker(0.0005), '.');
  EXPECT_EQ(severity_marker(0.005), 'o');
  EXPECT_EQ(severity_marker(0.05), 'O');
  EXPECT_EQ(severity_marker(0.5), '#');
}

TEST(RenderMetricTree, ListsPatternsWithPercentages) {
  const auto& res = metatrace_result();
  const std::string out = render_metric_tree(res.cube);
  EXPECT_NE(out.find("Time"), std::string::npos);
  EXPECT_NE(out.find("Grid Late Sender"), std::string::npos);
  EXPECT_NE(out.find("Grid Wait at Barrier"), std::string::npos);
  EXPECT_NE(out.find('%'), std::string::npos);
  // Root is always 100%.
  EXPECT_NE(out.find("100.0%"), std::string::npos);
}

TEST(RenderMetricTree, CutoffHidesTinyMetrics) {
  const auto& res = metatrace_result();
  RenderOptions opts;
  opts.cutoff_fraction = 0.9;  // hide everything but the root
  const std::string out = render_metric_tree(res.cube, opts);
  EXPECT_NE(out.find("Time"), std::string::npos);
  EXPECT_EQ(out.find("Late Sender"), std::string::npos);
}

TEST(RenderCallTree, ShowsHotPaths) {
  const auto& res = metatrace_result();
  const std::string out =
      render_call_tree(res.cube, res.patterns.grid_wait_barrier);
  // The paper's hot spot: the barrier inside ReadVelFieldFromTrace.
  EXPECT_NE(out.find("ReadVelFieldFromTrace"), std::string::npos);
  EXPECT_NE(out.find("MPI_Barrier"), std::string::npos);
}

TEST(RenderSystemTree, GroupsByMetahost) {
  const auto& res = metatrace_result();
  const std::string out =
      render_system_tree(res.cube, res.patterns.grid_wait_barrier);
  EXPECT_NE(out.find("FZJ"), std::string::npos);
  EXPECT_NE(out.find("CAESAR"), std::string::npos);
  EXPECT_NE(out.find("FH-BRS"), std::string::npos);
  EXPECT_NE(out.find("node"), std::string::npos);
  EXPECT_NE(out.find("rank"), std::string::npos);
}

TEST(RenderReport, ThreePanelsComposed) {
  const auto& res = metatrace_result();
  RenderOptions opts;
  opts.selected_metric = "Grid Late Sender";
  opts.show_seconds = true;
  const std::string out = render_report(res.cube, opts);
  EXPECT_NE(out.find("Metric tree"), std::string::npos);
  EXPECT_NE(out.find("Call tree"), std::string::npos);
  EXPECT_NE(out.find("System tree"), std::string::npos);
  EXPECT_NE(out.find("(0."), std::string::npos);  // seconds shown
}

TEST(RenderReport, SelectedCallPathRestrictsSystemTree) {
  const auto& res = metatrace_result();
  RenderOptions opts;
  opts.selected_metric = "Grid Wait at Barrier";
  opts.selected_call_path =
      "main/partrace_main/ReadVelFieldFromTrace/MPI_Barrier";
  const std::string out = render_report(res.cube, opts);
  EXPECT_NE(out.find("at call path"), std::string::npos);
}

TEST(RenderReport, UnknownSelectionsThrow) {
  const auto& res = metatrace_result();
  RenderOptions opts;
  opts.selected_metric = "No Such Metric";
  EXPECT_THROW(render_report(res.cube, opts), Error);
  RenderOptions opts2;
  opts2.selected_call_path = "no/such/path";
  EXPECT_THROW(render_report(res.cube, opts2), Error);
}

TEST(RenderPairBreakdown, ListsWaiterPeerPairs) {
  const auto& res = metatrace_result();
  const std::string out =
      render_pair_breakdown(res.cube, res.patterns.grid_late_sender);
  // FH-BRS waits for CAESAR inside cgiteration (paper Fig. 6a).
  EXPECT_NE(out.find("FH-BRS <- CAESAR"), std::string::npos);
  EXPECT_NE(out.find('%'), std::string::npos);
}

TEST(RenderPairBreakdown, EmptyForPatternsWithoutGridHits) {
  const auto& res = metatrace_result();
  // Grid Late Broadcast never fires in MetaTrace.
  const std::string out =
      render_pair_breakdown(res.cube, res.patterns.grid_late_broadcast);
  EXPECT_TRUE(out.empty());
}

TEST(RenderSystemTree, PaperHotSpotConcentratedOnXd1) {
  // Fig. 6(b): Grid Wait at Barrier at ReadVelFieldFromTrace lands on
  // FZJ's XD1 (the Partrace ranks 16..31).
  const auto& res = metatrace_result();
  double fzj = 0.0;
  double rest = 0.0;
  for (Rank r = 0; r < res.cube.num_ranks(); ++r) {
    const double v =
        res.cube.rank_inclusive_total(res.patterns.grid_wait_barrier, r);
    if (res.cube.system.metahost(res.cube.system.metahost_of(r)).name ==
        "FZJ")
      fzj += v;
    else
      rest += v;
  }
  EXPECT_GT(fzj, 5.0 * std::max(rest, 1e-9));
}

}  // namespace
}  // namespace metascope::report
