#include "simnet/topology.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "simnet/presets.hpp"

namespace metascope::simnet {
namespace {

Topology two_host_topo() {
  Topology topo;
  MetahostSpec a;
  a.name = "A";
  a.num_nodes = 2;
  a.cpus_per_node = 2;
  a.internal = LinkSpec{microseconds(20), microseconds(1), 1e9};
  MetahostSpec b;
  b.name = "B";
  b.num_nodes = 3;
  b.cpus_per_node = 1;
  b.internal = LinkSpec{microseconds(50), microseconds(2), 0.5e9};
  const MetahostId ia = topo.add_metahost(a);
  const MetahostId ib = topo.add_metahost(b);
  topo.set_external_link(ia, ib,
                         LinkSpec{milliseconds(1), microseconds(4), 1.25e9});
  topo.place_block(ia, 2, 2);  // ranks 0..3
  topo.place_block(ib, 3, 1);  // ranks 4..6
  return topo;
}

TEST(Topology, CountsAndPlacement) {
  const Topology t = two_host_topo();
  EXPECT_EQ(t.num_metahosts(), 2);
  EXPECT_EQ(t.num_nodes(), 5);
  EXPECT_EQ(t.num_ranks(), 7);
  EXPECT_EQ(t.metahost_of(0).get(), 0);
  EXPECT_EQ(t.metahost_of(3).get(), 0);
  EXPECT_EQ(t.metahost_of(4).get(), 1);
  EXPECT_EQ(t.placement(0).node, t.placement(1).node);
  EXPECT_NE(t.placement(1).node, t.placement(2).node);
  EXPECT_EQ(t.placement(5).cpu, 0);
}

TEST(Topology, LinkClassification) {
  const Topology t = two_host_topo();
  EXPECT_EQ(t.link_class(0, 1), LinkClass::IntraNode);
  EXPECT_EQ(t.link_class(0, 2), LinkClass::Internal);
  EXPECT_EQ(t.link_class(0, 4), LinkClass::External);
  EXPECT_TRUE(t.same_node(0, 1));
  EXPECT_FALSE(t.same_node(0, 2));
  EXPECT_TRUE(t.same_metahost(0, 2));
  EXPECT_FALSE(t.same_metahost(3, 4));
}

TEST(Topology, LinkSpecSelection) {
  const Topology t = two_host_topo();
  EXPECT_DOUBLE_EQ(t.link_between(0, 2).latency_mean, microseconds(20));
  EXPECT_DOUBLE_EQ(t.link_between(4, 5).latency_mean, microseconds(50));
  EXPECT_DOUBLE_EQ(t.link_between(0, 4).latency_mean, milliseconds(1));
  // Intra-node default link.
  EXPECT_LT(t.link_between(0, 1).latency_mean, microseconds(1));
}

TEST(Topology, ExpectedDelayIncludesBandwidth) {
  const Topology t = two_host_topo();
  const LinkSpec& l = t.link_between(0, 4);
  EXPECT_DOUBLE_EQ(l.expected_delay(1.25e9), milliseconds(1) + 1.0);
}

TEST(Topology, RanksOnAndLocalMasters) {
  const Topology t = two_host_topo();
  const auto on_a = t.ranks_on(MetahostId{0});
  EXPECT_EQ(on_a.size(), 4u);
  EXPECT_EQ(on_a.front(), 0);
  const auto masters = t.local_masters();
  ASSERT_EQ(masters.size(), 2u);
  EXPECT_EQ(masters[0], 0);
  EXPECT_EQ(masters[1], 4);
}

TEST(Topology, MetahostOfNode) {
  const Topology t = two_host_topo();
  EXPECT_EQ(t.metahost_of_node(NodeId{0}).get(), 0);
  EXPECT_EQ(t.metahost_of_node(NodeId{4}).get(), 1);
  EXPECT_THROW((void)t.metahost_of_node(NodeId{99}), Error);
}

TEST(Topology, RejectsBadInputs) {
  Topology t;
  MetahostSpec bad;
  bad.name = "";
  EXPECT_THROW(t.add_metahost(bad), Error);
  MetahostSpec ok;
  ok.name = "X";
  ok.num_nodes = 1;
  ok.cpus_per_node = 1;
  const MetahostId id = t.add_metahost(ok);
  EXPECT_THROW(t.place_block(id, 2, 1), Error);   // too many nodes
  EXPECT_THROW(t.place_block(id, 1, 2), Error);   // too many cpus
  EXPECT_THROW(t.set_external_link(id, id, {}), Error);
  t.place_block(id, 1, 1);
  EXPECT_THROW(t.place_block(id, 1, 1), Error);   // nodes exhausted
  EXPECT_THROW((void)t.placement(5), Error);
  EXPECT_THROW((void)t.metahost(MetahostId{7}), Error);
}

TEST(Topology, RepeatedBlocksLandOnFreshNodes) {
  Topology t;
  MetahostSpec spec;
  spec.name = "X";
  spec.num_nodes = 4;
  spec.cpus_per_node = 2;
  const MetahostId id = t.add_metahost(spec);
  t.place_block(id, 2, 2);
  t.place_block(id, 2, 1);
  EXPECT_EQ(t.num_ranks(), 6);
  EXPECT_NE(t.placement(4).node, t.placement(0).node);
  EXPECT_NE(t.placement(4).node, t.placement(2).node);
}

TEST(Topology, DescribeMentionsEveryMetahost) {
  const Topology t = two_host_topo();
  const std::string d = t.describe();
  EXPECT_NE(d.find("A"), std::string::npos);
  EXPECT_NE(d.find("B"), std::string::npos);
  EXPECT_NE(d.find("2 metahosts"), std::string::npos);
}

TEST(ViolaPreset, MatchesPaperTestbed) {
  ViolaIds ids;
  const Topology v = make_viola(&ids);
  EXPECT_EQ(v.num_metahosts(), 3);
  EXPECT_EQ(v.metahost(ids.caesar).name, "CAESAR");
  EXPECT_EQ(v.metahost(ids.caesar).num_nodes, 32);
  EXPECT_EQ(v.metahost(ids.caesar).cpus_per_node, 2);
  EXPECT_EQ(v.metahost(ids.fh_brs).num_nodes, 6);
  EXPECT_EQ(v.metahost(ids.fh_brs).cpus_per_node, 4);
  EXPECT_EQ(v.metahost(ids.fzj).num_nodes, 60);
  // Table 1 moments.
  EXPECT_NEAR(v.metahost(ids.fzj).internal.latency_mean, 21.5e-6, 1e-9);
  EXPECT_NEAR(v.metahost(ids.fzj).internal.latency_stddev, 0.814e-6, 1e-10);
  EXPECT_NEAR(v.metahost(ids.fh_brs).internal.latency_mean, 44.4e-6, 1e-9);
  const LinkSpec& wan = v.external_link(ids.fzj, ids.fh_brs);
  EXPECT_NEAR(wan.latency_mean, 988e-6, 1e-9);
  EXPECT_NEAR(wan.latency_stddev, 3.86e-6, 1e-10);
  // The paper observed Trace kernels running ~2x faster on FH-BRS.
  EXPECT_NEAR(v.metahost(ids.fh_brs).speed_factor /
                  v.metahost(ids.caesar).speed_factor,
              2.0, 1e-12);
}

TEST(ViolaPreset, Experiment1PlacementMatchesTable3) {
  ViolaIds ids;
  const Topology t = make_viola_experiment1(&ids);
  EXPECT_EQ(t.num_ranks(), 32);
  // Trace: FH-BRS 2x4 = ranks 0..7, CAESAR 4x2 = ranks 8..15.
  for (Rank r = 0; r < 8; ++r) EXPECT_EQ(t.metahost_of(r), ids.fh_brs);
  for (Rank r = 8; r < 16; ++r) EXPECT_EQ(t.metahost_of(r), ids.caesar);
  // Partrace: FZJ XD1 8x2 = ranks 16..31.
  for (Rank r = 16; r < 32; ++r) EXPECT_EQ(t.metahost_of(r), ids.fzj);
}

TEST(IbmPreset, SingleMetahostWithGlobalClock) {
  const Topology t = make_ibm_power(32);
  EXPECT_EQ(t.num_metahosts(), 1);
  EXPECT_EQ(t.num_ranks(), 32);
  EXPECT_TRUE(t.metahost(MetahostId{0}).has_global_clock);
  EXPECT_TRUE(t.same_node(0, 31));
}

}  // namespace
}  // namespace metascope::simnet
