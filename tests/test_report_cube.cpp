#include "report/cube.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace metascope::report {
namespace {

/// Small hand-built cube: 2 metrics (parent/child), 3 call paths
/// (main -> {solve -> MPI_Recv}), 2 ranks.
struct Fixture {
  Cube cube;
  MetricId time;
  MetricId wait;
  CallPathId main_c;
  CallPathId solve_c;
  CallPathId recv_c;

  Fixture() {
    time = cube.metrics.add("Time", "total");
    wait = cube.metrics.add("Wait", "waiting", time);
    const RegionId main_r = cube.regions.intern("main");
    const RegionId solve_r = cube.regions.intern("solve");
    const RegionId recv_r = cube.regions.intern("MPI_Recv");
    main_c = cube.calls.get_or_add(CallPathId{}, main_r);
    solve_c = cube.calls.get_or_add(main_c, solve_r);
    recv_c = cube.calls.get_or_add(solve_c, recv_r);
    for (Rank r = 0; r < 2; ++r) {
      tracing::LocationDef loc;
      loc.machine = MetahostId{0};
      loc.node = NodeId{r};
      loc.process = r;
      cube.system.locations.push_back(loc);
    }
    cube.system.metahosts.push_back(
        tracing::MetahostDef{MetahostId{0}, "M"});
  }
};

TEST(MetricTreeTest, AddAndNavigate) {
  MetricTree t;
  const MetricId a = t.add("A", "");
  const MetricId b = t.add("B", "", a);
  const MetricId c = t.add("C", "", a);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.children(a).size(), 2u);
  EXPECT_EQ(t.roots().size(), 1u);
  const auto pre = t.preorder();
  ASSERT_EQ(pre.size(), 3u);
  EXPECT_EQ(pre[0], a);
  EXPECT_EQ(pre[1], b);
  EXPECT_EQ(pre[2], c);
  EXPECT_EQ(t.find("B"), b);
  EXPECT_TRUE(t.contains("C"));
  EXPECT_FALSE(t.contains("D"));
}

TEST(MetricTreeTest, RejectsDuplicatesAndBadParents) {
  MetricTree t;
  t.add("A", "");
  EXPECT_THROW(t.add("A", ""), Error);
  EXPECT_THROW(t.add("B", "", MetricId{42}), Error);
  EXPECT_THROW((void)t.find("missing"), Error);
  EXPECT_THROW((void)t.def(MetricId{9}), Error);
}

TEST(CallTreeTest, GetOrAddDeduplicates) {
  CallTree t;
  const CallPathId a = t.get_or_add(CallPathId{}, RegionId{0});
  const CallPathId b = t.get_or_add(a, RegionId{1});
  const CallPathId b2 = t.get_or_add(a, RegionId{1});
  EXPECT_EQ(b, b2);
  EXPECT_EQ(t.size(), 2u);
  // Same region under a different parent is a different path.
  const CallPathId c = t.get_or_add(CallPathId{}, RegionId{1});
  EXPECT_NE(b, c);
}

TEST(CallTreeTest, PathString) {
  Fixture f;
  EXPECT_EQ(f.cube.calls.path_string(f.recv_c, f.cube.regions),
            "main/solve/MPI_Recv");
  EXPECT_EQ(f.cube.calls.path_string(f.main_c, f.cube.regions), "main");
}

TEST(CubeTest, AddAndGet) {
  Fixture f;
  f.cube.add(f.time, f.main_c, 0, 1.5);
  f.cube.add(f.time, f.main_c, 0, 0.5);
  EXPECT_DOUBLE_EQ(f.cube.get(f.time, f.main_c, 0), 2.0);
  EXPECT_DOUBLE_EQ(f.cube.get(f.time, f.main_c, 1), 0.0);
  EXPECT_DOUBLE_EQ(f.cube.get(f.wait, f.recv_c, 1), 0.0);
}

TEST(CubeTest, MetricAggregation) {
  Fixture f;
  f.cube.add(f.time, f.main_c, 0, 3.0);
  f.cube.add(f.wait, f.recv_c, 0, 1.0);
  f.cube.add(f.wait, f.recv_c, 1, 2.0);
  EXPECT_DOUBLE_EQ(f.cube.metric_total(f.time), 3.0);
  EXPECT_DOUBLE_EQ(f.cube.metric_total(f.wait), 3.0);
  EXPECT_DOUBLE_EQ(f.cube.metric_inclusive_total(f.time), 6.0);
  EXPECT_DOUBLE_EQ(f.cube.total_time(), 6.0);
}

TEST(CubeTest, CallAggregation) {
  Fixture f;
  f.cube.add(f.time, f.solve_c, 0, 1.0);
  f.cube.add(f.wait, f.recv_c, 0, 2.0);
  // cnode_inclusive: metric subtree at one cnode.
  EXPECT_DOUBLE_EQ(f.cube.cnode_inclusive(f.time, f.solve_c), 1.0);
  EXPECT_DOUBLE_EQ(f.cube.cnode_inclusive(f.time, f.recv_c), 2.0);
  // call-subtree inclusive rolls children up.
  EXPECT_DOUBLE_EQ(f.cube.cnode_subtree_inclusive(f.time, f.main_c), 3.0);
  EXPECT_DOUBLE_EQ(f.cube.cnode_subtree_inclusive(f.wait, f.main_c), 2.0);
}

TEST(CubeTest, RankAggregation) {
  Fixture f;
  f.cube.add(f.time, f.main_c, 0, 1.0);
  f.cube.add(f.wait, f.recv_c, 0, 0.25);
  f.cube.add(f.time, f.main_c, 1, 2.0);
  EXPECT_DOUBLE_EQ(f.cube.rank_inclusive_total(f.time, 0), 1.25);
  EXPECT_DOUBLE_EQ(f.cube.rank_inclusive_total(f.time, 1), 2.0);
  EXPECT_DOUBLE_EQ(f.cube.rank_inclusive_total(f.wait, 0), 0.25);
}

TEST(CubeTest, NegativeAdjustmentsAllowed) {
  Fixture f;
  f.cube.add(f.time, f.main_c, 0, 5.0);
  f.cube.add(f.time, f.main_c, 0, -2.0);
  EXPECT_DOUBLE_EQ(f.cube.get(f.time, f.main_c, 0), 3.0);
}

TEST(CubeTest, PairBreakdown) {
  Fixture f;
  f.cube.add_pair_breakdown(f.wait, MetahostId{0}, MetahostId{1}, 1.5);
  f.cube.add_pair_breakdown(f.wait, MetahostId{0}, MetahostId{1}, 0.5);
  EXPECT_DOUBLE_EQ(
      f.cube.pair_breakdown(f.wait, MetahostId{0}, MetahostId{1}), 2.0);
  // Direction matters.
  EXPECT_DOUBLE_EQ(
      f.cube.pair_breakdown(f.wait, MetahostId{1}, MetahostId{0}), 0.0);
}

TEST(CubeTest, ApproxEqual) {
  Fixture a;
  Fixture b;
  a.cube.add(a.time, a.main_c, 0, 1.0);
  b.cube.add(b.time, b.main_c, 0, 1.0 + 1e-15);
  EXPECT_TRUE(a.cube.approx_equal(b.cube, 1e-12));
  b.cube.add(b.wait, b.recv_c, 1, 0.1);
  EXPECT_FALSE(a.cube.approx_equal(b.cube, 1e-12));
}

TEST(CubeTest, ApproxEqualRejectsDifferentTrees) {
  Fixture a;
  Fixture b;
  b.cube.metrics.add("Extra", "");
  EXPECT_FALSE(a.cube.approx_equal(b.cube, 1.0));
}

TEST(CubeTest, BoundsChecked) {
  Fixture f;
  EXPECT_THROW(f.cube.add(MetricId{77}, f.main_c, 0, 1.0), Error);
  EXPECT_THROW(f.cube.add(f.time, CallPathId{77}, 0, 1.0), Error);
  EXPECT_THROW(f.cube.add(f.time, f.main_c, 9, 1.0), Error);
}

}  // namespace
}  // namespace metascope::report
