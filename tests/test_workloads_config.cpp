#include "workloads/config.hpp"

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "clocksync/correction.hpp"
#include "common/error.hpp"

namespace metascope::workloads {
namespace {

TEST(Config, PresetTopologies) {
  const auto viola = parse_topology(Json::parse(
      R"({"preset": "viola-experiment1"})"));
  EXPECT_EQ(viola.num_ranks(), 32);
  EXPECT_EQ(viola.num_metahosts(), 3);
  const auto ibm =
      parse_topology(Json::parse(R"({"preset": "ibm-power", "procs": 8})"));
  EXPECT_EQ(ibm.num_ranks(), 8);
  EXPECT_THROW(parse_topology(Json::parse(R"({"preset": "nope"})")), Error);
}

TEST(Config, CustomTopology) {
  const auto topo = parse_topology(Json::parse(R"({
    "metahosts": [
      {"name": "A", "nodes": 2, "cpus_per_node": 2, "speed": 2.0,
       "latency_us": 15, "jitter_us": 0.5, "bandwidth_gbps": 2.0},
      {"name": "B", "nodes": 1, "cpus_per_node": 4, "global_clock": true}
    ],
    "external": {"latency_us": 800, "asymmetry": 0.05},
    "placement": [
      {"metahost": 0, "nodes": 2, "procs_per_node": 2},
      {"metahost": 1, "nodes": 1, "procs_per_node": 4}
    ]
  })"));
  EXPECT_EQ(topo.num_ranks(), 8);
  EXPECT_EQ(topo.metahost(MetahostId{0}).name, "A");
  EXPECT_DOUBLE_EQ(topo.metahost(MetahostId{0}).speed_factor, 2.0);
  EXPECT_NEAR(topo.metahost(MetahostId{0}).internal.latency_mean, 15e-6,
              1e-12);
  EXPECT_TRUE(topo.metahost(MetahostId{1}).has_global_clock);
  EXPECT_NEAR(topo.link_between(0, 4).latency_mean, 800e-6, 1e-12);
  EXPECT_DOUBLE_EQ(topo.link_between(0, 4).asymmetry, 0.05);
}

TEST(Config, TopologyValidation) {
  EXPECT_THROW(parse_topology(Json::parse(R"({})")), Error);
  EXPECT_THROW(parse_topology(Json::parse(
                   R"({"metahosts": [{"name": "A"}]})")),
               Error);  // no placement
  EXPECT_THROW(parse_topology(Json::parse(R"({
    "metahosts": [{"name": "A", "nodes": 1}],
    "placement": [{"metahost": 0, "nodes": 5, "procs_per_node": 1}]
  })")),
               Error);  // placement overflow
  EXPECT_THROW(parse_topology(Json::parse(R"({
    "metahosts": [{"name": "A", "asymmetry": 1.5}],
    "placement": [{"metahost": 0, "nodes": 1, "procs_per_node": 1}]
  })")),
               Error);  // bad asymmetry
}

TEST(Config, SyncSchemes) {
  EXPECT_EQ(parse_sync_scheme("none"), tracing::SyncScheme::None);
  EXPECT_EQ(parse_sync_scheme("flat-single"),
            tracing::SyncScheme::FlatSingle);
  EXPECT_EQ(parse_sync_scheme("flat-two"), tracing::SyncScheme::FlatTwo);
  EXPECT_EQ(parse_sync_scheme("hierarchical-two"),
            tracing::SyncScheme::HierarchicalTwo);
  EXPECT_THROW(parse_sync_scheme("flat"), Error);
}

TEST(Config, FullExperimentParsesAndRuns) {
  const auto spec = parse_experiment(Json::parse(R"({
    "name": "cfg-test",
    "seed": 3,
    "topology": {
      "metahosts": [
        {"name": "A", "nodes": 2, "cpus_per_node": 1},
        {"name": "B", "nodes": 2, "cpus_per_node": 1, "speed": 0.5}
      ],
      "external": {"latency_us": 900, "asymmetry": 0.08},
      "placement": [
        {"metahost": 0, "nodes": 2, "procs_per_node": 1},
        {"metahost": 1, "nodes": 2, "procs_per_node": 1}
      ]
    },
    "workload": {"kind": "metatrace", "trace_ranks": 2,
                 "partrace_ranks": 2, "coupling_steps": 2,
                 "cg_iterations": 5, "field_mb_total": 8},
    "clocks": {"max_offset_s": 0.2, "max_drift": 2e-5},
    "sync": "hierarchical-two"
  })"));
  EXPECT_EQ(spec.name, "cfg-test");
  EXPECT_EQ(spec.topology.num_ranks(), 4);
  EXPECT_EQ(spec.config.measurement.scheme,
            tracing::SyncScheme::HierarchicalTwo);
  EXPECT_DOUBLE_EQ(spec.config.clocks.max_offset, 0.2);
  auto data = run_experiment(spec.topology, spec.program, spec.config);
  clocksync::synchronize(data.traces);
  const auto res = analysis::analyze_serial(data.traces);
  EXPECT_GT(res.cube.total_time(), 0.0);
}

TEST(Config, AnalysisPatternsSelection) {
  const auto spec = parse_experiment(Json::parse(R"({
    "topology": {"preset": "ibm-power", "procs": 2},
    "workload": {"kind": "pattern-demo", "pattern": "late-sender"},
    "sync": "none",
    "clocks": {"perfect": true},
    "analysis": {"patterns": ["late_sender", "wait_barrier"]}
  })"));
  ASSERT_EQ(spec.patterns.size(), 2u);
  EXPECT_EQ(spec.patterns[0], "late_sender");
  EXPECT_EQ(spec.patterns[1], "wait_barrier");
  auto data = run_experiment(spec.topology, spec.program, spec.config);
  analysis::ReplayOptions opts;
  opts.patterns = spec.patterns;
  const auto res = analysis::analyze_serial(data.traces, opts);
  EXPECT_TRUE(res.patterns.late_sender.valid());
  EXPECT_FALSE(res.patterns.late_receiver.valid());
  // Omitted section: every pattern runs.
  const auto all = parse_experiment(Json::parse(R"({
    "topology": {"preset": "ibm-power", "procs": 2},
    "workload": {"kind": "pattern-demo", "pattern": "late-sender"}})"));
  EXPECT_TRUE(all.patterns.empty());
}

TEST(Config, ClockbenchWorkload) {
  const auto spec = parse_experiment(Json::parse(R"({
    "topology": {"preset": "ibm-power", "procs": 4},
    "workload": {"kind": "clockbench", "rounds": 20},
    "sync": "none",
    "clocks": {"perfect": true}
  })"));
  EXPECT_TRUE(spec.config.perfect_clocks);
  auto data = run_experiment(spec.topology, spec.program, spec.config);
  EXPECT_GT(data.exec.stats.messages, 0u);
}

TEST(Config, PatternDemoWorkloads) {
  for (const char* p : {"late-sender", "late-receiver"}) {
    const std::string doc = std::string(R"({
      "topology": {"preset": "ibm-power", "procs": 2},
      "workload": {"kind": "pattern-demo", "pattern": ")") +
                            p + R"("}})";
    EXPECT_NO_THROW(parse_experiment(Json::parse(doc))) << p;
  }
  EXPECT_THROW(parse_experiment(Json::parse(R"({
    "topology": {"preset": "ibm-power", "procs": 2},
    "workload": {"kind": "pattern-demo", "pattern": "bogus"}})")),
               Error);
}

TEST(Config, UnknownWorkloadKindRejected) {
  EXPECT_THROW(parse_experiment(Json::parse(R"({
    "topology": {"preset": "ibm-power", "procs": 2},
    "workload": {"kind": "quantum"}})")),
               Error);
}

TEST(Config, TelemetrySection) {
  const auto spec = parse_experiment(Json::parse(R"({
    "topology": {"preset": "ibm-power", "procs": 2},
    "workload": {"kind": "pattern-demo", "pattern": "late-sender"},
    "telemetry": {"trace_out": "trace.json", "sample_interval_ms": 25,
                  "ring_capacity": 512}})"));
  EXPECT_EQ(spec.telemetry.trace_out, "trace.json");
  EXPECT_EQ(spec.telemetry.sample_interval_ms, 25);
  EXPECT_EQ(spec.telemetry.ring_capacity, 512u);
  // Omitted section: recorder and sampler stay off, default ring.
  const auto off = parse_experiment(Json::parse(R"({
    "topology": {"preset": "ibm-power", "procs": 2},
    "workload": {"kind": "pattern-demo", "pattern": "late-sender"}})"));
  EXPECT_TRUE(off.telemetry.trace_out.empty());
  EXPECT_EQ(off.telemetry.sample_interval_ms, 0);
  EXPECT_EQ(off.telemetry.ring_capacity, 0u);
  EXPECT_THROW(parse_experiment(Json::parse(R"({
    "topology": {"preset": "ibm-power", "procs": 2},
    "workload": {"kind": "pattern-demo", "pattern": "late-sender"},
    "telemetry": {"ring_capacity": -1}})")),
               Error);
}

TEST(Config, MetatraceRankMismatchRejected) {
  EXPECT_THROW(parse_experiment(Json::parse(R"({
    "topology": {"preset": "ibm-power", "procs": 8},
    "workload": {"kind": "metatrace", "trace_ranks": 2,
                 "partrace_ranks": 2}})")),
               Error);
}

}  // namespace
}  // namespace metascope::workloads
