// Pattern semantics: each microworkload constructs one wait state with a
// known magnitude (paper Figure 4); the analyzer must report it at the
// right metric, call path, and location — and classify it as "grid"
// exactly when the communication crosses metahosts.
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "analysis/pattern_engine.hpp"
#include "common/error.hpp"
#include "simnet/presets.hpp"
#include "workloads/experiment.hpp"
#include "workloads/microworkloads.hpp"

namespace metascope::analysis {
namespace {

using simnet::LinkSpec;
using simnet::MetahostSpec;
using simnet::Topology;

/// Two single-node metahosts with one CPU each (ranks 0 and 1 on
/// different metahosts) — every message is "grid".
Topology cross_topo() {
  Topology topo;
  MetahostSpec a;
  a.name = "A";
  a.num_nodes = 1;
  a.cpus_per_node = 1;
  a.internal = LinkSpec{10e-6, 0.0, 1e9};
  MetahostSpec b = a;
  b.name = "B";
  const auto ia = topo.add_metahost(a);
  const auto ib = topo.add_metahost(b);
  topo.set_external_link(ia, ib, LinkSpec{1000e-6, 0.0, 1e9});
  topo.place_block(ia, 1, 1);
  topo.place_block(ib, 1, 1);
  return topo;
}

/// One metahost, n single-CPU nodes — nothing is "grid".
Topology local_topo(int n) {
  Topology topo;
  MetahostSpec a;
  a.name = "A";
  a.num_nodes = n;
  a.cpus_per_node = 1;
  a.internal = LinkSpec{10e-6, 0.0, 1e9};
  topo.add_metahost(a);
  topo.place_block(MetahostId{0}, n, 1);
  return topo;
}

AnalysisResult analyze(const Topology& topo, const simmpi::Program& prog) {
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  return analyze_serial(data.traces);
}

/// Sum of a metric's inclusive severity at one rank over all call paths.
double rank_total(const AnalysisResult& res, MetricId m, Rank r) {
  return res.cube.rank_inclusive_total(m, r);
}

TEST(LateSenderPattern, GridWaitMatchesGap) {
  const double gap = 0.25;
  const auto res =
      analyze(cross_topo(), workloads::late_sender_program(gap));
  const auto& ps = res.patterns;
  // The receiver (rank 1) waited ~gap inside MPI_Recv.
  EXPECT_NEAR(rank_total(res, ps.grid_late_sender, 1), gap, 0.002);
  // Classified as grid: the base Late Sender node holds nothing itself.
  EXPECT_NEAR(res.cube.metric_total(ps.late_sender), 0.0, 1e-6);
  // Nothing at the sender.
  EXPECT_NEAR(rank_total(res, ps.grid_late_sender, 0), 0.0, 1e-9);
  EXPECT_NEAR(res.cube.metric_total(ps.late_receiver), 0.0, 1e-6);
}

TEST(LateSenderPattern, LocalWaitIsNotGrid) {
  const double gap = 0.25;
  const auto res =
      analyze(local_topo(2), workloads::late_sender_program(gap));
  const auto& ps = res.patterns;
  EXPECT_NEAR(rank_total(res, ps.late_sender, 1), gap, 0.002);
  EXPECT_NEAR(res.cube.metric_total(ps.grid_late_sender), 0.0, 1e-9);
}

TEST(LateSenderPattern, AttributedToReceiveCallPath) {
  const auto res =
      analyze(cross_topo(), workloads::late_sender_program(0.25));
  const auto& ps = res.patterns;
  bool found = false;
  for (CallPathId c : res.cube.calls.preorder()) {
    const double v = res.cube.cnode_inclusive(ps.grid_late_sender, c);
    if (v > 0.2) {
      const std::string path =
          res.cube.calls.path_string(c, res.cube.regions);
      EXPECT_EQ(path, "main/do_recv/MPI_Recv");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LateSenderPattern, NoFalsePositiveWhenSenderEarly) {
  // Sender ready first: receiver never waits more than the latency.
  const auto res =
      analyze(cross_topo(), workloads::late_receiver_program(0.25, 100.0));
  const auto& ps = res.patterns;
  EXPECT_LT(res.cube.metric_inclusive_total(ps.late_sender), 0.01);
}

TEST(LateReceiverPattern, RendezvousSenderWaits) {
  const double gap = 0.3;
  const auto res = analyze(cross_topo(),
                           workloads::late_receiver_program(gap, 1 << 20));
  const auto& ps = res.patterns;
  EXPECT_NEAR(rank_total(res, ps.grid_late_receiver, 0), gap, 0.005);
  EXPECT_NEAR(res.cube.metric_total(ps.late_receiver), 0.0, 1e-6);
}

TEST(LateReceiverPattern, EagerSendNeverFires) {
  // Below the eager threshold the sender returns immediately, so a late
  // receiver costs the sender nothing.
  const auto res = analyze(cross_topo(),
                           workloads::late_receiver_program(0.3, 1000.0));
  const auto& ps = res.patterns;
  EXPECT_LT(res.cube.metric_inclusive_total(ps.late_receiver), 1e-4);
}

TEST(LateReceiverPattern, LocalVariant) {
  const auto res = analyze(local_topo(2),
                           workloads::late_receiver_program(0.3, 1 << 20));
  const auto& ps = res.patterns;
  EXPECT_NEAR(rank_total(res, ps.late_receiver, 0), 0.3, 0.005);
  EXPECT_NEAR(res.cube.metric_total(ps.grid_late_receiver), 0.0, 1e-9);
}

TEST(WaitAtNxNPattern, EachRankWaitsForTheLast) {
  const std::vector<double> delays{0.0, 0.1, 0.2, 0.4};
  const auto res = analyze(local_topo(4), workloads::wait_nxn_program(delays));
  const auto& ps = res.patterns;
  for (Rank r = 0; r < 4; ++r) {
    EXPECT_NEAR(rank_total(res, ps.wait_nxn, r),
                0.4 - delays[static_cast<std::size_t>(r)], 0.002)
        << "rank " << r;
  }
  EXPECT_NEAR(res.cube.metric_total(ps.grid_wait_nxn), 0.0, 1e-9);
}

TEST(WaitAtNxNPattern, GridWhenCommunicatorSpansMetahosts) {
  Topology topo = cross_topo();
  const auto res =
      analyze(topo, workloads::wait_nxn_program({0.0, 0.5}));
  const auto& ps = res.patterns;
  EXPECT_NEAR(rank_total(res, ps.grid_wait_nxn, 0), 0.5, 0.005);
  EXPECT_NEAR(res.cube.metric_total(ps.wait_nxn), 0.0, 1e-6);
}

TEST(WaitAtBarrierPattern, MatchesStagger) {
  const std::vector<double> delays{0.3, 0.0, 0.1, 0.2};
  const auto res =
      analyze(local_topo(4), workloads::wait_barrier_program(delays));
  const auto& ps = res.patterns;
  for (Rank r = 0; r < 4; ++r)
    EXPECT_NEAR(rank_total(res, ps.wait_barrier, r),
                0.3 - delays[static_cast<std::size_t>(r)], 0.002);
}

TEST(WaitAtBarrierPattern, UniformEntryMeansNoWait) {
  const auto res = analyze(local_topo(4),
                           workloads::wait_barrier_program({0.1, 0.1, 0.1, 0.1}));
  const auto& ps = res.patterns;
  EXPECT_LT(res.cube.metric_inclusive_total(ps.wait_barrier), 1e-4);
}

TEST(EarlyReducePattern, RootWaitsForLastSender) {
  const std::vector<double> delays{0.0, 0.2, 0.5, 0.1};
  const auto res =
      analyze(local_topo(4), workloads::early_reduce_program(delays));
  const auto& ps = res.patterns;
  EXPECT_NEAR(rank_total(res, ps.early_reduce, 0), 0.5, 0.002);
  for (Rank r = 1; r < 4; ++r)
    EXPECT_LT(rank_total(res, ps.early_reduce, r), 1e-4);
}

TEST(LateBroadcastPattern, NonRootsWaitForRoot) {
  const double root_delay = 0.35;
  const auto res = analyze(
      local_topo(4), workloads::late_broadcast_program(4, root_delay));
  const auto& ps = res.patterns;
  EXPECT_LT(rank_total(res, ps.late_broadcast, 0), 1e-4);
  for (Rank r = 1; r < 4; ++r)
    EXPECT_NEAR(rank_total(res, ps.late_broadcast, r), root_delay, 0.005);
}

TEST(PatternHierarchy, RegistryInstallShape) {
  report::MetricTree tree;
  PatternRegistry registry = PatternRegistry::standard();
  registry.install(tree);
  const PatternSet ps = PatternSet::from_tree(tree);
  EXPECT_EQ(tree.def(ps.grid_late_sender).parent, ps.late_sender);
  EXPECT_EQ(tree.def(ps.grid_wait_barrier).parent, ps.wait_barrier);
  EXPECT_EQ(tree.def(ps.late_sender).parent, ps.p2p);
  EXPECT_EQ(tree.def(ps.wait_nxn).parent, ps.collective);
  EXPECT_EQ(tree.def(ps.wait_barrier).parent, ps.synchronization);
  EXPECT_EQ(tree.def(ps.mpi).parent, ps.time);
  EXPECT_FALSE(tree.def(ps.time).parent.valid());
  // Names match the paper's labels.
  EXPECT_EQ(tree.def(ps.grid_wait_nxn).name, "Grid Wait at N x N");
  EXPECT_EQ(tree.def(ps.grid_late_sender).name, "Grid Late Sender");
  // The Completion patterns sit beside their Wait siblings, with grid
  // children of their own.
  EXPECT_EQ(tree.def(ps.nxn_completion).parent, ps.collective);
  EXPECT_EQ(tree.def(ps.barrier_completion).parent, ps.synchronization);
  EXPECT_EQ(tree.def(ps.grid_nxn_completion).parent, ps.nxn_completion);
  EXPECT_EQ(tree.def(ps.grid_barrier_completion).parent,
            ps.barrier_completion);
  EXPECT_EQ(tree.def(ps.barrier_completion).name, "Barrier Completion");
}

TEST(PatternHierarchy, SelectionPrunesTree) {
  report::MetricTree tree;
  PatternRegistry registry = PatternRegistry::standard();
  registry.select({"late_sender", "wait_barrier"});
  registry.install(tree);
  const PatternSet ps = PatternSet::from_tree(tree);
  EXPECT_TRUE(ps.late_sender.valid());
  EXPECT_TRUE(ps.grid_late_sender.valid());
  EXPECT_TRUE(ps.wait_barrier.valid());
  // Deselected patterns have no node; the category skeleton stays.
  EXPECT_FALSE(ps.late_receiver.valid());
  EXPECT_FALSE(ps.nxn_completion.valid());
  EXPECT_FALSE(ps.barrier_completion.valid());
  EXPECT_TRUE(ps.collective.valid());
  EXPECT_TRUE(ps.synchronization.valid());
}

TEST(PatternHierarchy, UnknownSelectionKeyThrows) {
  PatternRegistry registry = PatternRegistry::standard();
  EXPECT_THROW(registry.select({"late_sendr"}), Error);
  // Structural detectors are not selectable either.
  EXPECT_THROW(registry.select({"category_time"}), Error);
}

TEST(PatternHierarchy, EntriesListEveryBuiltin) {
  const PatternRegistry registry = PatternRegistry::standard();
  const auto entries = registry.entries();
  ASSERT_EQ(entries.size(), 9u);
  std::size_t selectable = 0;
  for (const auto& e : entries) {
    EXPECT_FALSE(e.key.empty());
    EXPECT_TRUE(e.enabled);
    if (!e.structural) {
      ++selectable;
      EXPECT_FALSE(e.metric.empty());
    }
  }
  EXPECT_EQ(selectable, 8u);
}

TEST(RegionClassification, Categories) {
  EXPECT_EQ(classify_region("main"), RegionCategory::User);
  EXPECT_EQ(classify_region("MPI_Send"), RegionCategory::PointToPoint);
  EXPECT_EQ(classify_region("MPI_Wait"), RegionCategory::PointToPoint);
  EXPECT_EQ(classify_region("MPI_Barrier"),
            RegionCategory::Synchronization);
  EXPECT_EQ(classify_region("MPI_Allreduce"), RegionCategory::Collective);
  EXPECT_EQ(classify_region("MPI_Bcast"), RegionCategory::Collective);
}

TEST(RegionClassTableTest, MatchesNameClassification) {
  NameTable<RegionId> regions;
  const RegionId main_r = regions.intern("main");
  const RegionId send = regions.intern("MPI_Send");
  const RegionId isend = regions.intern("MPI_Isend");
  const RegionId barrier = regions.intern("MPI_Barrier");
  const RegionId allreduce = regions.intern("MPI_Allreduce");
  const RegionClassTable table(regions);
  EXPECT_EQ(table.category(main_r), RegionCategory::User);
  EXPECT_EQ(table.category(send), RegionCategory::PointToPoint);
  EXPECT_EQ(table.category(barrier), RegionCategory::Synchronization);
  EXPECT_EQ(table.category(allreduce), RegionCategory::Collective);
  EXPECT_EQ(table.kind(allreduce), CollectiveKind::NxN);
  EXPECT_EQ(table.kind(barrier), CollectiveKind::Barrier);
  EXPECT_EQ(table.kind(send), CollectiveKind::NotACollective);
  EXPECT_TRUE(table.is_blocking_standard_send(send));
  EXPECT_FALSE(table.is_blocking_standard_send(isend));
  EXPECT_FALSE(table.is_blocking_standard_send(main_r));
}

TEST(CollectiveKinds, Mapping) {
  EXPECT_EQ(collective_kind("MPI_Allreduce"), CollectiveKind::NxN);
  EXPECT_EQ(collective_kind("MPI_Alltoall"), CollectiveKind::NxN);
  EXPECT_EQ(collective_kind("MPI_Barrier"), CollectiveKind::Barrier);
  EXPECT_EQ(collective_kind("MPI_Bcast"), CollectiveKind::OneToN);
  EXPECT_EQ(collective_kind("MPI_Scatter"), CollectiveKind::OneToN);
  EXPECT_EQ(collective_kind("MPI_Reduce"), CollectiveKind::NToOne);
  EXPECT_EQ(collective_kind("MPI_Gather"), CollectiveKind::NToOne);
  EXPECT_EQ(collective_kind("MPI_Send"), CollectiveKind::NotACollective);
}

class GapSweep : public ::testing::TestWithParam<double> {};

TEST_P(GapSweep, LateSenderSeverityTracksGap) {
  const double gap = GetParam();
  const auto res =
      analyze(cross_topo(), workloads::late_sender_program(gap));
  const auto& ps = res.patterns;
  EXPECT_NEAR(res.cube.metric_inclusive_total(ps.late_sender), gap,
              0.01 * gap + 0.003);
}

INSTANTIATE_TEST_SUITE_P(Gaps, GapSweep,
                         ::testing::Values(0.01, 0.05, 0.1, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace metascope::analysis
