#include "simmpi/program.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace metascope::simmpi {
namespace {

TEST(CommSet, WorldIsDense) {
  CommSet cs(4);
  const Communicator& w = cs.get(cs.world());
  EXPECT_EQ(w.size(), 4);
  EXPECT_EQ(w.name, "MPI_COMM_WORLD");
  for (Rank r = 0; r < 4; ++r) EXPECT_EQ(w.local_rank(r), r);
}

TEST(CommSet, SubCommunicatorLocalRanks) {
  CommSet cs(8);
  const CommId sub = cs.create("half", {1, 3, 5, 7});
  const Communicator& c = cs.get(sub);
  EXPECT_EQ(c.local_rank(3), 1);
  EXPECT_EQ(c.local_rank(0), -1);
  EXPECT_TRUE(c.contains(7));
  EXPECT_FALSE(c.contains(6));
}

TEST(CommSet, RejectsBadMembers) {
  CommSet cs(4);
  EXPECT_THROW(cs.create("bad", {0, 9}), Error);
  EXPECT_THROW(cs.create("empty", {}), Error);
  EXPECT_THROW((void)cs.get(CommId{5}), Error);
}

TEST(ProgramBuilder, MpiRegionsPreInterned) {
  Program p(2);
  EXPECT_TRUE(p.regions.contains("MPI_Send"));
  EXPECT_TRUE(p.regions.contains("MPI_Barrier"));
  EXPECT_TRUE(p.regions.contains("MPI_Alltoall"));
}

TEST(ProgramBuilder, CursorBuildsOps) {
  ProgramBuilder b(2);
  b.on(0).enter("main").compute(0.5).send(1, 7, 100.0).exit();
  b.on(1).enter("main").recv(0, 7).exit();
  const Program p = b.take();
  ASSERT_EQ(p.ops[0].size(), 4u);
  EXPECT_EQ(p.ops[0][0].kind, OpKind::Enter);
  EXPECT_EQ(p.regions.name(p.ops[0][0].region), "main");
  EXPECT_EQ(p.ops[0][1].kind, OpKind::Compute);
  EXPECT_DOUBLE_EQ(p.ops[0][1].work, 0.5);
  EXPECT_EQ(p.ops[0][2].peer, 1);
  EXPECT_EQ(p.ops[0][2].tag, 7);
}

TEST(ProgramBuilder, RequestSlotsSequential) {
  ProgramBuilder b(2);
  auto& c0 = b.on(0);
  c0.enter("m");
  const int r1 = c0.isend(1, 0, 10.0);
  const int r2 = c0.irecv(1, 1);
  EXPECT_EQ(r1, 0);
  EXPECT_EQ(r2, 1);
  c0.wait(r1).wait(r2).exit();
  b.on(1).enter("m").recv(0, 0).send(0, 1, 5.0).exit();
  EXPECT_NO_THROW(b.take());
}

TEST(ProgramValidate, UnbalancedEnterExit) {
  ProgramBuilder b(1);
  b.on(0).enter("main");
  EXPECT_THROW(b.take(), Error);
}

TEST(ProgramValidate, ExitWithoutEnter) {
  ProgramBuilder b(1);
  b.on(0).exit();
  EXPECT_THROW(b.take(), Error);
}

TEST(ProgramValidate, UnmatchedSend) {
  ProgramBuilder b(2);
  b.on(0).send(1, 0, 8.0);
  EXPECT_THROW(b.take(), Error);
}

TEST(ProgramValidate, UnmatchedRecv) {
  ProgramBuilder b(2);
  b.on(1).recv(0, 0);
  EXPECT_THROW(b.take(), Error);
}

TEST(ProgramValidate, TagMismatchIsUnmatched) {
  ProgramBuilder b(2);
  b.on(0).send(1, 1, 8.0);
  b.on(1).recv(0, 2);
  EXPECT_THROW(b.take(), Error);
}

TEST(ProgramValidate, SelfSendRejected) {
  ProgramBuilder b(2);
  b.on(0).send(0, 0, 8.0);
  EXPECT_THROW(b.take(), Error);
}

TEST(ProgramValidate, PeerOutOfRange) {
  ProgramBuilder b(2);
  b.on(0).send(5, 0, 8.0);
  b.on(1).recv(0, 0);
  EXPECT_THROW(b.take(), Error);
}

TEST(ProgramValidate, CollectiveSequenceMismatch) {
  ProgramBuilder b(2);
  b.on(0).barrier();
  // rank 1 never calls the barrier.
  EXPECT_THROW(b.take(), Error);
}

TEST(ProgramValidate, CollectiveKindMismatch) {
  ProgramBuilder b(2);
  b.on(0).barrier();
  b.on(1).allreduce(8.0);
  EXPECT_THROW(b.take(), Error);
}

TEST(ProgramValidate, CollectiveOnNonMemberComm) {
  ProgramBuilder b(4);
  const CommId sub = b.comms().create("sub", {0, 1});
  b.on(2).barrier(sub);
  EXPECT_THROW(b.take(), Error);
}

TEST(ProgramValidate, RootedCollectiveNeedsMemberRoot) {
  ProgramBuilder b(4);
  const CommId sub = b.comms().create("sub", {0, 1});
  b.on(0).bcast(3, 8.0, sub);
  b.on(1).bcast(3, 8.0, sub);
  EXPECT_THROW(b.take(), Error);
}

TEST(ProgramValidate, WaitWithoutRequest) {
  ProgramBuilder b(1);
  Op op;
  op.kind = OpKind::Wait;
  op.request = 0;
  ProgramBuilder b2(1);
  b2.program().ops[0].push_back(op);
  EXPECT_THROW(b2.take(), Error);
}

TEST(ProgramValidate, DoubleWaitRejected) {
  ProgramBuilder b(2);
  auto& c = b.on(0);
  c.enter("m");
  const int req = c.isend(1, 0, 4.0);
  c.wait(req).wait(req).exit();
  b.on(1).enter("m").recv(0, 0).exit();
  EXPECT_THROW(b.take(), Error);
}

TEST(ProgramValidate, UnwaitedRequestRejected) {
  ProgramBuilder b(2);
  b.on(0).isend(1, 0, 4.0);
  b.on(1).recv(0, 0);
  EXPECT_THROW(b.take(), Error);
}

TEST(ProgramValidate, SendRecvBalances) {
  ProgramBuilder b(2);
  b.on(0).sendrecv(1, 8.0, 1, 8.0, 0);
  b.on(1).sendrecv(0, 8.0, 0, 8.0, 0);
  EXPECT_NO_THROW(b.take());
}

TEST(ProgramValidate, NegativeWorkRejected) {
  ProgramBuilder b(1);
  b.on(0).compute(-1.0);
  EXPECT_THROW(b.take(), Error);
}

TEST(Program, TotalOpsCounts) {
  ProgramBuilder b(2);
  b.on(0).enter("m").compute(1.0).exit();
  b.on(1).enter("m").exit();
  EXPECT_EQ(b.program().total_ops(), 5u);
}

}  // namespace
}  // namespace metascope::simmpi
