// Property-test sweeps across configuration space: engine timing
// invariants under varying protocol/speed parameters, synchronization
// guarantees under varying clock badness, cube XML round-trips for
// randomized cubes, and CSV export consistency.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "analysis/analyzer.hpp"
#include "clocksync/clock_condition.hpp"
#include "clocksync/correction.hpp"
#include "common/rng.hpp"
#include "report/csv.hpp"
#include "report/cubexml.hpp"
#include "simnet/presets.hpp"
#include "workloads/clockbench.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

namespace metascope {
namespace {

// --- engine invariants over protocol parameters ---------------------------

struct EngineParam {
  double eager_threshold;
  double speed_b;
};

class EngineParamSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EngineParamSweep, TimingInvariantsHold) {
  const auto [threshold, speed_b] = GetParam();
  simnet::Topology topo;
  simnet::MetahostSpec a;
  a.name = "A";
  a.num_nodes = 4;
  a.cpus_per_node = 1;
  a.internal = simnet::LinkSpec{20e-6, 0.5e-6, 1e9};
  simnet::MetahostSpec b = a;
  b.name = "B";
  b.speed_factor = speed_b;
  topo.add_metahost(a);
  topo.add_metahost(b);
  topo.place_block(MetahostId{0}, 4, 1);
  topo.place_block(MetahostId{1}, 4, 1);

  workloads::MetaTraceConfig mt;
  mt.trace_ranks = 4;
  mt.partrace_ranks = 4;
  mt.dims[0] = 4;
  mt.dims[1] = 1;
  mt.dims[2] = 1;
  mt.coupling_steps = 2;
  mt.cg_iterations = 8;
  mt.field_mb_total = 16.0;
  const auto prog = workloads::build_metatrace(mt);

  simmpi::EngineConfig cfg;
  cfg.eager_threshold = threshold;
  const auto res = simmpi::execute(topo, prog, cfg);

  // Invariant 1: per-rank event streams are time-monotone.
  for (const auto& events : res.per_rank)
    for (std::size_t i = 1; i < events.size(); ++i)
      ASSERT_LE(events[i - 1].time.s, events[i].time.s);
  // Invariant 2: every send has a matching receive (count conservation).
  std::size_t sends = 0;
  std::size_t recvs = 0;
  for (const auto& events : res.per_rank) {
    for (const auto& e : events) {
      sends += e.type == simmpi::ExecEventType::Send;
      recvs += e.type == simmpi::ExecEventType::Recv;
    }
  }
  EXPECT_EQ(sends, recvs);
  EXPECT_EQ(sends, res.stats.messages);
  // Invariant 3: no receive before its send (true-time causality), via
  // the trace layer's matcher on a perfect-clock collection.
  const auto clocks = simnet::ClockSet::perfect(topo);
  const auto tc = tracing::collect_traces(
      topo, clocks, prog, res,
      {tracing::SyncScheme::None, 10, 1});
  EXPECT_EQ(clocksync::check_clock_condition(tc).violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, EngineParamSweep,
    ::testing::Combine(::testing::Values(0.0, 1024.0, 65536.0, 1e12),
                       ::testing::Values(0.25, 0.5, 1.0, 2.0)));

// --- slower hardware can only increase total time --------------------------

TEST(EngineMonotonicity, SlowerClusterNeverFinishesEarlier) {
  double last_end = 0.0;
  for (double speed : {2.0, 1.0, 0.5, 0.25}) {
    simnet::Topology topo;
    simnet::MetahostSpec a;
    a.name = "A";
    a.num_nodes = 8;
    a.cpus_per_node = 1;
    a.speed_factor = speed;
    a.internal = simnet::LinkSpec{20e-6, 0.0, 1e9};
    topo.add_metahost(a);
    topo.place_block(MetahostId{0}, 8, 1);
    workloads::MetaTraceConfig mt;
    mt.trace_ranks = 4;
    mt.partrace_ranks = 4;
    mt.dims[0] = 4;
    mt.dims[1] = 1;
    mt.dims[2] = 1;
    mt.coupling_steps = 2;
    mt.cg_iterations = 5;
    mt.field_mb_total = 8.0;
    const auto prog = workloads::build_metatrace(mt);
    const auto res = simmpi::execute(topo, prog);
    EXPECT_GT(res.end_time.s, last_end);
    last_end = res.end_time.s;
  }
}

// --- synchronization guarantees over clock badness -------------------------

class ClockBadnessSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ClockBadnessSweep, HierarchicalAlwaysSatisfiesClockCondition) {
  const auto [max_offset, max_drift] = GetParam();
  const auto topo = simnet::make_viola_experiment1();
  workloads::ClockBenchConfig bc;
  bc.rounds = 150;
  bc.pad_work = 0.02;
  const auto prog = workloads::build_clock_bench(topo.num_ranks(), bc);
  workloads::ExperimentConfig cfg;
  cfg.clocks.max_offset = max_offset;
  cfg.clocks.max_drift = max_drift;
  cfg.measurement.scheme = tracing::SyncScheme::HierarchicalTwo;
  auto data = workloads::run_experiment(topo, prog, cfg);
  clocksync::synchronize(data.traces);
  EXPECT_EQ(clocksync::check_clock_condition(data.traces).violations, 0u)
      << "offset " << max_offset << " drift " << max_drift;
}

INSTANTIATE_TEST_SUITE_P(
    ClockSpace, ClockBadnessSweep,
    ::testing::Combine(::testing::Values(0.01, 0.5, 5.0),
                       ::testing::Values(1e-6, 1e-5, 1e-4)));

// --- cube XML round-trip on randomized cubes --------------------------------

class CubeRoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CubeRoundTripSweep, RandomCubeSurvivesXml) {
  Rng rng(GetParam());
  report::Cube cube;
  // Random metric forest (first node is the root).
  const int nmetrics = 3 + static_cast<int>(rng.uniform_index(6));
  for (int m = 0; m < nmetrics; ++m) {
    const MetricId parent =
        m == 0 ? MetricId{}
               : MetricId{static_cast<int>(rng.uniform_index(
                     static_cast<std::uint64_t>(m)))};
    cube.metrics.add("metric_" + std::to_string(m), "d" + std::to_string(m),
                     parent);
  }
  const int nregions = 2 + static_cast<int>(rng.uniform_index(5));
  for (int r = 0; r < nregions; ++r)
    cube.regions.intern("region_" + std::to_string(r));
  const int ncnodes = 1 + static_cast<int>(rng.uniform_index(8));
  for (int c = 0; c < ncnodes; ++c) {
    const CallPathId parent =
        c == 0 ? CallPathId{}
               : CallPathId{static_cast<int>(rng.uniform_index(
                     static_cast<std::uint64_t>(c)))};
    cube.calls.get_or_add(
        parent, RegionId{static_cast<int>(rng.uniform_index(
                    static_cast<std::uint64_t>(nregions)))});
  }
  const int nranks = 2 + static_cast<int>(rng.uniform_index(6));
  cube.system.metahosts.push_back(
      tracing::MetahostDef{MetahostId{0}, "M0"});
  for (Rank r = 0; r < nranks; ++r) {
    tracing::LocationDef loc;
    loc.machine = MetahostId{0};
    loc.node = NodeId{r};
    loc.process = r;
    cube.system.locations.push_back(loc);
  }
  const auto real_cnodes = static_cast<int>(cube.calls.size());
  for (int i = 0; i < 40; ++i) {
    cube.add(MetricId{static_cast<int>(rng.uniform_index(
                 static_cast<std::uint64_t>(nmetrics)))},
             CallPathId{static_cast<int>(rng.uniform_index(
                 static_cast<std::uint64_t>(real_cnodes)))},
             static_cast<Rank>(rng.uniform_index(
                 static_cast<std::uint64_t>(nranks))),
             rng.uniform(-2.0, 10.0));
  }
  const report::Cube loaded =
      report::from_cube_xml(report::to_cube_xml(cube));
  EXPECT_TRUE(cube.approx_equal(loaded, 0.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubeRoundTripSweep,
                         ::testing::Range<std::uint64_t>(100, 112));

// --- CSV export --------------------------------------------------------------

TEST(CsvExport, RowsMatchCubeContent) {
  const auto topo = simnet::make_viola_experiment1();
  workloads::MetaTraceConfig mt;
  mt.coupling_steps = 2;
  mt.cg_iterations = 5;
  const auto prog = workloads::build_metatrace(mt);
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  const auto res = analysis::analyze_serial(data.traces);

  const std::string csv = report::cube_to_csv(res.cube);
  std::istringstream is(csv);
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "metric,call_path,rank,metahost,exclusive_seconds");
  std::size_t rows = 0;
  double sum = 0.0;
  std::string line;
  while (std::getline(is, line)) {
    ++rows;
    sum += std::stod(line.substr(line.rfind(',') + 1));
  }
  EXPECT_GT(rows, 100u);
  // The long-format dump partitions total time exactly.
  double partition = 0.0;
  for (std::size_t m = 0; m < res.cube.metrics.size(); ++m)
    partition += res.cube.metric_total(MetricId{static_cast<int>(m)});
  EXPECT_NEAR(sum, partition, 1e-5 * partition);
}

TEST(CsvExport, SummaryContainsEveryMetricOnce) {
  const auto topo = simnet::make_ibm_power(4);
  const auto prog = workloads::build_clock_bench(4, {});
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  const auto data = workloads::run_experiment(topo, prog, cfg);
  const auto res = analysis::analyze_serial(data.traces);
  const std::string csv = report::metric_summary_csv(res.cube);
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);  // header
  std::size_t rows = 0;
  while (std::getline(is, line)) ++rows;
  EXPECT_EQ(rows, res.cube.metrics.size());
  EXPECT_NE(csv.find("Grid Late Sender"), std::string::npos);
}

TEST(CsvExport, FieldsWithCommasAreQuoted) {
  report::Cube cube;
  const MetricId m = cube.metrics.add("Time, total", "");
  const RegionId r = cube.regions.intern("f<a,b>");
  const CallPathId c = cube.calls.get_or_add(CallPathId{}, r);
  cube.system.metahosts.push_back(tracing::MetahostDef{MetahostId{0}, "M"});
  tracing::LocationDef loc;
  loc.machine = MetahostId{0};
  loc.node = NodeId{0};
  loc.process = 0;
  cube.system.locations.push_back(loc);
  cube.add(m, c, 0, 1.0);
  const std::string csv = report::cube_to_csv(cube);
  EXPECT_NE(csv.find("\"Time, total\""), std::string::npos);
  EXPECT_NE(csv.find("\"f<a,b>\""), std::string::npos);
}

}  // namespace
}  // namespace metascope
