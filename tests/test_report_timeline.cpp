#include "report/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "simnet/presets.hpp"
#include "workloads/experiment.hpp"
#include "workloads/microworkloads.hpp"

namespace metascope::report {
namespace {

tracing::TraceCollection simple_traces() {
  const auto topo = simnet::make_ibm_power(2);
  const auto prog = workloads::late_sender_program(0.5, 1024.0);
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  auto data = workloads::run_experiment(topo, prog, cfg);
  return std::move(data.traces);
}

TEST(Timeline, RendersOneRowPerRankPlusLegend) {
  const auto tc = simple_traces();
  const std::string out = render_timeline(tc);
  std::istringstream is(out);
  std::string line;
  int rows = 0;
  bool legend = false;
  while (std::getline(is, line)) {
    if (line.find(" |") != std::string::npos &&
        line.find("Timeline") == std::string::npos)
      ++rows;
    if (line.rfind("legend:", 0) == 0) legend = true;
  }
  EXPECT_EQ(rows, 2);
  EXPECT_TRUE(legend);
}

TEST(Timeline, LateSenderVisible) {
  // Rank 0 computes 0.5 s inside "main" (letter) then MPI_Send ('s');
  // rank 1 sits in MPI_Recv ('r') for nearly the whole window.
  const auto tc = simple_traces();
  TimelineOptions opts;
  opts.width = 50;
  const std::string out = render_timeline(tc, opts);
  std::istringstream is(out);
  std::string header;
  std::string row0;
  std::string row1;
  std::getline(is, header);
  std::getline(is, row0);
  std::getline(is, row1);
  // Rank 1's row is dominated by 'r' (blocked receive).
  const auto r_count = std::count(row1.begin(), row1.end(), 'r');
  EXPECT_GT(r_count, 40);
  // Rank 0's row shows the user region for most of the time, 's' briefly
  // at the end at most.
  const auto s_count = std::count(row0.begin(), row0.end(), 's');
  EXPECT_LT(s_count, 3);
  EXPECT_GT(std::count(row0.begin(), row0.end(), 'a') +
                std::count(row0.begin(), row0.end(), 'b'),
            40);
}

TEST(Timeline, WindowRestriction) {
  const auto tc = simple_traces();
  TimelineOptions opts;
  opts.begin = 0.0;
  opts.end = 0.1;  // only the compute phase
  opts.width = 20;
  const std::string out = render_timeline(tc, opts);
  // No 's' yet in this early window.
  std::istringstream is(out);
  std::string header;
  std::string row0;
  std::getline(is, header);
  std::getline(is, row0);
  EXPECT_EQ(row0.find('s'), std::string::npos);
}

TEST(Timeline, RankSelection) {
  const auto tc = simple_traces();
  TimelineOptions opts;
  opts.ranks = {1};
  const std::string out = render_timeline(tc, opts);
  EXPECT_EQ(out.find("   0 |"), std::string::npos);
  EXPECT_NE(out.find("   1 |"), std::string::npos);
}

TEST(Timeline, MpiGlyphsInLegend) {
  const auto topo = simnet::make_ibm_power(4);
  const auto prog = workloads::wait_barrier_program({0.0, 0.1, 0.2, 0.3});
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  auto data = workloads::run_experiment(topo, prog, cfg);
  const std::string out = render_timeline(data.traces);
  EXPECT_NE(out.find("B=MPI_Barrier"), std::string::npos);
  // Rank 0 (earliest at the barrier) waits longest: most 'B' columns.
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);  // header
  std::vector<long> b_counts;
  for (int r = 0; r < 4; ++r) {
    std::getline(is, line);
    b_counts.push_back(std::count(line.begin(), line.end(), 'B'));
  }
  EXPECT_GT(b_counts[0], b_counts[3]);
}

TEST(Timeline, InvalidOptionsThrow) {
  const auto tc = simple_traces();
  TimelineOptions opts;
  opts.width = 0;
  EXPECT_THROW(render_timeline(tc, opts), Error);
  TimelineOptions opts2;
  opts2.ranks = {7};
  EXPECT_THROW(render_timeline(tc, opts2), Error);
}

}  // namespace
}  // namespace metascope::report
