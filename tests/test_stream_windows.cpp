// Window-cursor edge cases for the out-of-core streaming replay:
// degenerate rank shapes (zero events, one window next to hundreds),
// quarantined ranks under permissive streaming, window boundaries
// falling mid-collective under a pathologically tiny budget, the
// resident-bytes accounting contract (only resident windows count, the
// high-water mark responds to the budget and sits far below the
// materialized collection), and ErrorCode parity with the batch reader
// for damaged archives.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "archive/archive.hpp"
#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "simmpi/program.hpp"
#include "simnet/topology.hpp"
#include "telemetry/metrics.hpp"
#include "tracing/epilog_io.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

namespace metascope::analysis {
namespace {

namespace fs = std::filesystem;
using tracing::EventType;

simnet::Topology local_topo(int n) {
  simnet::Topology topo;
  simnet::MetahostSpec a;
  a.name = "A";
  a.num_nodes = n;
  a.cpus_per_node = 1;
  a.internal = simnet::LinkSpec{10e-6, 0.0, 1e9};
  topo.add_metahost(a);
  topo.place_block(MetahostId{0}, n, 1);
  return topo;
}

class StreamWindowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (fs::temp_directory_path() /
             ("msc_stream_win_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name()))
                .string();
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  /// Writes the collection into a v3 archive under the test's temp dir.
  archive::ExperimentArchive write_archive(
      const simnet::Topology& topo, const tracing::TraceCollection& tc) {
    layout_ = archive::FileSystemLayout::shared(base_, topo.num_metahosts());
    auto arch = archive::ExperimentArchive::create(topo, layout_, "exp");
    arch.write_traces(topo, tc);
    return arch;
  }

  [[nodiscard]] std::string trace_path(Rank r) const {
    return base_ + "/exp.msc/" + tracing::trace_filename(r);
  }

  std::string base_;
  archive::FileSystemLayout layout_{
      archive::FileSystemLayout::shared("/tmp", 1)};
};

tracing::TraceCollection run_none(const simnet::Topology& topo,
                                  const simmpi::Program& prog) {
  workloads::ExperimentConfig cfg;
  cfg.perfect_clocks = true;
  cfg.measurement.scheme = tracing::SyncScheme::None;
  return workloads::run_experiment(topo, prog, cfg).traces;
}

// --- zero-event ranks ----------------------------------------------------

/// Three ranks, the middle one recorded nothing at all (its trace file
/// is a valid v3 encoding with zero events); the outer two exchange one
/// message. Hand-built so the empty trace is genuinely empty (no
/// measurement scaffolding events).
tracing::TraceCollection zero_event_middle_rank() {
  tracing::TraceCollection tc;
  tc.scheme = tracing::SyncScheme::None;
  const RegionId main_r = tc.defs.regions.intern("main");
  const RegionId send_r = tc.defs.regions.intern("MPI_Send");
  const RegionId recv_r = tc.defs.regions.intern("MPI_Recv");
  tc.defs.metahosts.push_back({MetahostId{0}, "A"});
  for (Rank r = 0; r < 3; ++r)
    tc.defs.locations.push_back({MetahostId{0}, NodeId{r}, r, 0});
  tc.defs.comms.push_back({CommId{0}, "world", {0, 1, 2}});
  auto msg = [&](tracing::LocalTrace& t, EventType type, double time,
                 Rank peer) {
    tracing::Event e;
    e.type = type;
    e.time = time;
    e.peer = peer;
    e.tag = 1;
    e.comm = CommId{0};
    t.events.push_back(e);
  };
  auto frame = [&](tracing::LocalTrace& t, EventType type, double time,
                   RegionId region) {
    tracing::Event e;
    e.type = type;
    e.time = time;
    e.region = region;
    t.events.push_back(e);
  };
  tracing::LocalTrace t0;
  t0.rank = 0;
  frame(t0, EventType::Enter, 0.0, main_r);
  frame(t0, EventType::Enter, 0.1, send_r);
  msg(t0, EventType::Send, 0.1, 2);
  frame(t0, EventType::Exit, 0.2, RegionId{});
  frame(t0, EventType::Exit, 0.3, RegionId{});
  tracing::LocalTrace t1;
  t1.rank = 1;  // recorded nothing
  tracing::LocalTrace t2;
  t2.rank = 2;
  frame(t2, EventType::Enter, 0.0, main_r);
  frame(t2, EventType::Enter, 0.05, recv_r);
  msg(t2, EventType::Recv, 0.25, 0);
  frame(t2, EventType::Exit, 0.3, RegionId{});
  frame(t2, EventType::Exit, 0.35, RegionId{});
  tc.ranks.push_back(std::move(t0));
  tc.ranks.push_back(std::move(t1));
  tc.ranks.push_back(std::move(t2));
  return tc;
}

TEST_F(StreamWindowTest, ZeroEventRankStreamsCleanAtEveryBudget) {
  const auto topo = local_topo(3);
  const auto tc = zero_event_middle_rank();
  const auto serial = analyze_serial(tc);
  const auto arch = write_archive(topo, tc);
  const auto src = arch.stream_source(archive::ReadOptions{});
  for (const std::size_t budget : {std::size_t{1}, std::size_t{1} << 20}) {
    ReplayOptions opts;
    opts.memory_budget_bytes = budget;
    const auto res = analyze_streaming(src, opts);
    EXPECT_TRUE(serial.cube.approx_equal(res.cube, 0.0))
        << "budget=" << budget;
    EXPECT_EQ(res.stats.events, serial.stats.events);
    EXPECT_EQ(res.stats.messages, 1u);
  }
}

// --- one-window rank next to a hundreds-of-windows rank ------------------

/// Ranks 0/1 exchange `rounds` tagged messages; rank 2 sends exactly one
/// message to rank 0. Under a tiny budget (single-event windows) ranks
/// 0/1 take hundreds of windows while rank 2 finishes in one.
simmpi::Program lopsided_program(int rounds) {
  simmpi::ProgramBuilder b(3);
  for (Rank r = 0; r < 3; ++r) b.on(r).enter("main");
  for (int i = 0; i < rounds; ++i) {
    b.on(0).enter("ping").send(1, i, 64.0).exit();
    b.on(1).enter("ping").recv(0, i).exit();
    b.on(1).enter("pong").send(0, 100000 + i, 64.0).exit();
    b.on(0).enter("pong").recv(1, 100000 + i).exit();
  }
  b.on(2).enter("solo").send(0, 999999, 64.0).exit();
  b.on(0).enter("solo").recv(2, 999999).exit();
  for (Rank r = 0; r < 3; ++r) b.on(r).exit();
  return b.take();
}

TEST_F(StreamWindowTest, OneWindowRankBesideHundredsOfWindowsRank) {
  const auto topo = local_topo(3);
  const auto tc = run_none(topo, lopsided_program(300));
  const auto serial = analyze_serial(tc);
  const auto arch = write_archive(topo, tc);
  const auto src = arch.stream_source(archive::ReadOptions{});

  telemetry::Registry::instance().reset();
  ReplayOptions opts;
  opts.memory_budget_bytes = 1;  // floors at one event per rank per window
  const auto res = analyze_streaming(src, opts);
  EXPECT_TRUE(serial.cube.approx_equal(res.cube, 0.0));
  EXPECT_EQ(res.stats.events, serial.stats.events);
  // Ranks 0/1 each carry 300+ message events, one per window; rank 2
  // fits in a couple. The window count must reflect the imbalance.
  EXPECT_GE(telemetry::counter("analysis.stream.windows").value(), 600u);
}

// --- window boundaries mid-collective ------------------------------------

/// Staggered collectives back to back: with single-event windows every
/// CollExit sits on a window boundary, so instances routinely span
/// windows on some ranks while others have already moved on.
simmpi::Program collective_storm(int rounds) {
  simmpi::ProgramBuilder b(4);
  for (Rank r = 0; r < 4; ++r) b.on(r).enter("main");
  for (int i = 0; i < rounds; ++i) {
    for (Rank r = 0; r < 4; ++r)
      b.on(r).compute(0.001 * ((r + i) % 4)).barrier();
    for (Rank r = 0; r < 4; ++r)
      b.on(r).compute(0.0005 * ((r * 3 + i) % 4)).allreduce(256.0);
    const Rank root = i % 4;
    for (Rank r = 0; r < 4; ++r) b.on(r).bcast(root, 4096.0);
  }
  for (Rank r = 0; r < 4; ++r) b.on(r).exit();
  return b.take();
}

TEST_F(StreamWindowTest, WindowBoundaryMidCollectiveNeitherDeadlocksNorDrifts) {
  const auto topo = local_topo(4);
  const auto tc = run_none(topo, collective_storm(40));
  const auto serial = analyze_serial(tc);
  const auto arch = write_archive(topo, tc);
  const auto src = arch.stream_source(archive::ReadOptions{});
  for (const std::size_t budget : {std::size_t{1}, std::size_t{2048}}) {
    ReplayOptions opts;
    opts.memory_budget_bytes = budget;
    const auto res = analyze_streaming(src, opts);
    EXPECT_TRUE(serial.cube.approx_equal(res.cube, 0.0))
        << "budget=" << budget;
    EXPECT_EQ(res.stats.collective_instances,
              serial.stats.collective_instances);
  }
}

// --- quarantined ranks under permissive streaming ------------------------

TEST_F(StreamWindowTest, PermissiveStreamingMatchesPermissiveMaterialized) {
  simnet::Topology topo;
  simnet::MetahostSpec a;
  a.name = "A";
  a.num_nodes = 1;
  a.cpus_per_node = 4;
  topo.add_metahost(a);
  topo.place_block(MetahostId{0}, 1, 4);

  workloads::MetaTraceConfig mt;
  mt.trace_ranks = 2;
  mt.partrace_ranks = 2;
  mt.dims[0] = 2;
  mt.dims[1] = 1;
  mt.dims[2] = 1;
  mt.coupling_steps = 2;
  mt.cg_iterations = 3;
  const auto tc = run_none(topo, workloads::build_metatrace(mt));
  const auto arch = write_archive(topo, tc);

  // Damage rank 2 mid-payload: open-time validation quarantines it.
  auto bytes = read_file_bytes(trace_path(2));
  bytes.resize(bytes.size() - bytes.size() / 4);
  write_file_bytes(trace_path(2), bytes);

  archive::ReadOptions popts;
  popts.permissive = true;
  archive::ReadReport mat_report;
  const auto pruned = arch.read_traces(popts, &mat_report);
  const auto want = analyze_serial(pruned);

  archive::ReadReport stream_report;
  const auto src = arch.stream_source(popts, &stream_report);
  ASSERT_EQ(stream_report.quarantined.size(), mat_report.quarantined.size());
  EXPECT_EQ(stream_report.quarantined[0].rank, mat_report.quarantined[0].rank);
  EXPECT_EQ(stream_report.quarantined[0].code, mat_report.quarantined[0].code);
  EXPECT_EQ(src.quarantined, mat_report.quarantined_ranks());

  for (const std::size_t budget : {std::size_t{1}, std::size_t{64} << 10}) {
    ReplayOptions opts;
    opts.memory_budget_bytes = budget;
    const auto res = analyze_streaming(src, opts);
    EXPECT_TRUE(want.cube.approx_equal(res.cube, 0.0))
        << "budget=" << budget;
    EXPECT_EQ(res.stats.events, want.stats.events);
    EXPECT_EQ(res.stats.messages, want.stats.messages);
  }
}

// --- resident-bytes accounting -------------------------------------------

TEST_F(StreamWindowTest, ResidentBytesCountOnlyResidentWindows) {
  // A message-heavy eight-rank ring: big enough that the materialized
  // collection dwarfs any sane window.
  simmpi::ProgramBuilder b(8);
  for (Rank r = 0; r < 8; ++r) b.on(r).enter("main");
  std::vector<int> reqs(8);
  for (int i = 0; i < 300; ++i) {
    for (Rank r = 0; r < 8; ++r) {
      auto& c = b.on(r);
      c.enter("shift");
      reqs[static_cast<std::size_t>(r)] = c.irecv((r + 7) % 8, i);
      c.send((r + 1) % 8, i, 256.0);
      c.wait(reqs[static_cast<std::size_t>(r)]);
      c.exit();
    }
  }
  for (Rank r = 0; r < 8; ++r) b.on(r).exit();
  const auto topo = local_topo(8);
  const auto tc = run_none(topo, b.take());

  const auto materialized = analyze_parallel(tc);
  const auto arch = write_archive(topo, tc);
  const auto src = arch.stream_source(archive::ReadOptions{});

  ReplayOptions small;
  small.memory_budget_bytes = 4096;
  const auto res_small = analyze_streaming(src, small);
  ReplayOptions large;
  large.memory_budget_bytes = std::size_t{1} << 30;
  const auto res_large = analyze_streaming(src, large);

  EXPECT_TRUE(materialized.cube.approx_equal(res_small.cube, 0.0));
  EXPECT_TRUE(materialized.cube.approx_equal(res_large.cube, 0.0));

  // The high-water mark counts only resident windows: far below the
  // whole materialized collection (the bench gate targets >= 4x; this
  // workload clears it comfortably) and responsive to the budget.
  ASSERT_GT(res_small.stats.trace_bytes_in_memory, 0u);
  EXPECT_LE(res_small.stats.trace_bytes_in_memory * 4,
            materialized.stats.trace_bytes_in_memory);
  EXPECT_LT(res_small.stats.trace_bytes_in_memory,
            res_large.stats.trace_bytes_in_memory);
  EXPECT_EQ(res_small.stats.events, materialized.stats.events);
}

// --- ErrorCode parity with the batch reader ------------------------------

TEST_F(StreamWindowTest, TruncatedMidBlockStreamingMatchesBatchErrorCode) {
  const auto topo = local_topo(3);
  const auto tc = run_none(topo, lopsided_program(40));
  const auto arch = write_archive(topo, tc);

  auto bytes = read_file_bytes(trace_path(1));
  bytes.resize(bytes.size() - bytes.size() / 3);  // cut inside the columns
  write_file_bytes(trace_path(1), bytes);

  ErrorCode batch_code = ErrorCode::None;
  Rank batch_rank = kNoRank;
  try {
    (void)arch.read_traces();
    FAIL() << "batch read succeeded on a truncated file";
  } catch (const Error& e) {
    batch_code = e.code();
    batch_rank = e.context().rank;
  }
  try {
    const auto src = arch.stream_source(archive::ReadOptions{});
    (void)analyze_streaming(src, ReplayOptions{});
    FAIL() << "streaming succeeded on a truncated file";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), batch_code) << e.what();
    EXPECT_EQ(e.context().rank, batch_rank) << e.what();
  }
}

TEST_F(StreamWindowTest, ZeroByteFileQuarantinedPermissivelyLikeBatch) {
  const auto topo = local_topo(3);
  const auto tc = run_none(topo, lopsided_program(10));
  const auto arch = write_archive(topo, tc);
  write_file_bytes(trace_path(0), {});

  EXPECT_THROW((void)arch.stream_source(archive::ReadOptions{}), Error);

  archive::ReadOptions popts;
  popts.permissive = true;
  archive::ReadReport report;
  const auto src = arch.stream_source(popts, &report);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].rank, 0);
  EXPECT_EQ(report.quarantined[0].code, ErrorCode::Truncated);

  const auto pruned = arch.read_traces(popts);
  const auto want = analyze_serial(pruned);
  const auto res = analyze_streaming(src, ReplayOptions{});
  EXPECT_TRUE(want.cube.approx_equal(res.cube, 0.0));
}

}  // namespace
}  // namespace metascope::analysis
