#include "simmpi/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace metascope::simmpi {
namespace {

using simnet::LinkSpec;
using simnet::MetahostSpec;
using simnet::Topology;

/// Two metahosts, two 2-way nodes each, jitter-free links for exact
/// timing checks. Ranks 0..3 on A, 4..7 on B.
Topology make_two_host(double speed_a = 1.0, double speed_b = 1.0) {
  Topology topo;
  MetahostSpec a;
  a.name = "A";
  a.num_nodes = 2;
  a.cpus_per_node = 2;
  a.speed_factor = speed_a;
  a.internal = LinkSpec{10e-6, 0.0, 1e9};
  a.intra_node = LinkSpec{1e-6, 0.0, 4e9};
  MetahostSpec b = a;
  b.name = "B";
  b.speed_factor = speed_b;
  const auto ia = topo.add_metahost(a);
  const auto ib = topo.add_metahost(b);
  topo.set_external_link(ia, ib, LinkSpec{1000e-6, 0.0, 1e9});
  topo.place_block(ia, 2, 2);
  topo.place_block(ib, 2, 2);
  return topo;
}

EngineConfig exact_config() {
  EngineConfig cfg;
  cfg.cpu_overhead = 1e-6;
  cfg.eager_threshold = 65536.0;
  return cfg;
}

const ExecEvent& find_event(const ExecResult& res, Rank r,
                            ExecEventType type, int nth = 0) {
  int seen = 0;
  for (const auto& e : res.per_rank[static_cast<std::size_t>(r)]) {
    if (e.type == type && seen++ == nth) return e;
  }
  throw Error("event not found");
}

TEST(Engine, ComputeAdvancesByWorkOverSpeed) {
  ProgramBuilder b(8);
  for (Rank r = 0; r < 8; ++r) b.on(r).enter("m").compute(1.0).exit();
  const Program p = b.take();
  const Topology topo = make_two_host(2.0, 0.5);
  const ExecResult res = execute(topo, p, exact_config());
  EXPECT_DOUBLE_EQ(res.rank_end[0].s, 0.5);  // speed 2.0
  EXPECT_DOUBLE_EQ(res.rank_end[4].s, 2.0);  // speed 0.5
  EXPECT_DOUBLE_EQ(res.end_time.s, 2.0);
}

TEST(Engine, EagerSendDoesNotBlockOnReceiver) {
  ProgramBuilder b(8);
  b.on(0).enter("m").send(4, 0, 1000.0).compute(0.001).exit();
  b.on(4).enter("m").compute(1.0).recv(0, 0).exit();
  for (Rank r : {1, 2, 3, 5, 6, 7}) b.on(r).enter("m").exit();
  const Topology topo = make_two_host();
  const ExecResult res = execute(topo, b.take(), exact_config());
  // Sender finished long before the receiver posted.
  const auto& send_exit = find_event(res, 0, ExecEventType::Exit, 0);
  EXPECT_LT(send_exit.time.s, 0.01);
  EXPECT_GT(res.rank_end[4].s, 1.0);
}

TEST(Engine, RecvCompletesAtArrival) {
  ProgramBuilder b(8);
  const double bytes = 1000.0;
  b.on(0).enter("m").compute(0.5).send(4, 0, bytes).exit();
  b.on(4).enter("m").recv(0, 0).exit();
  for (Rank r : {1, 2, 3, 5, 6, 7}) b.on(r).enter("m").exit();
  const Topology topo = make_two_host();
  const EngineConfig cfg = exact_config();
  const ExecResult res = execute(topo, b.take(), cfg);
  const auto& send = find_event(res, 0, ExecEventType::Send);
  const auto& recv = find_event(res, 4, ExecEventType::Recv);
  // Arrival = send_event + latency + bytes/bw; completion adds overhead.
  const double expect_arrival = send.time.s + 1000e-6 + bytes / 1e9;
  EXPECT_NEAR(recv.time.s, expect_arrival + cfg.cpu_overhead, 1e-9);
  // The send event sits inside the sender's MPI_Send region, after 0.5s
  // of compute.
  EXPECT_NEAR(send.time.s, 0.5 + 0.5 * cfg.cpu_overhead, 1e-9);
}

TEST(Engine, RendezvousSenderBlocksUntilReceivePosted) {
  ProgramBuilder b(8);
  const double bytes = 1 << 20;  // > eager threshold
  b.on(0).enter("m").send(4, 0, bytes).exit();
  b.on(4).enter("m").compute(0.8).recv(0, 0).exit();
  for (Rank r : {1, 2, 3, 5, 6, 7}) b.on(r).enter("m").exit();
  const Topology topo = make_two_host();
  const ExecResult res = execute(topo, b.take(), exact_config());
  // Sender's exit happens only after the receiver posted at ~0.8s.
  const auto& send_exit = find_event(res, 0, ExecEventType::Exit, 0);
  EXPECT_GT(send_exit.time.s, 0.8);
  // And the transfer itself takes bytes/bw after the handshake.
  EXPECT_GT(send_exit.time.s, 0.8 + bytes / 1e9);
}

TEST(Engine, EagerVersusRendezvousThreshold) {
  const Topology topo = make_two_host();
  for (double bytes : {1000.0, 100000.0}) {
    ProgramBuilder b(8);
    b.on(0).enter("m").send(4, 0, bytes).exit();
    b.on(4).enter("m").compute(0.5).recv(0, 0).exit();
    for (Rank r : {1, 2, 3, 5, 6, 7}) b.on(r).enter("m").exit();
    const ExecResult res = execute(topo, b.take(), exact_config());
    const auto& send_exit = find_event(res, 0, ExecEventType::Exit, 0);
    if (bytes < 65536.0) {
      EXPECT_LT(send_exit.time.s, 0.1);
    } else {
      EXPECT_GT(send_exit.time.s, 0.5);
    }
  }
}

TEST(Engine, IsendReturnsImmediatelyWaitBlocks) {
  ProgramBuilder b(8);
  const double bytes = 1 << 20;
  auto& c0 = b.on(0);
  c0.enter("m");
  const int req = c0.isend(4, 0, bytes);
  c0.compute(0.1);
  c0.wait(req);
  c0.exit();
  b.on(4).enter("m").compute(0.8).recv(0, 0).exit();
  for (Rank r : {1, 2, 3, 5, 6, 7}) b.on(r).enter("m").exit();
  const Topology topo = make_two_host();
  const ExecResult res = execute(topo, b.take(), exact_config());
  // MPI_Isend exits immediately (first Exit after its Enter).
  const auto& isend_exit = find_event(res, 0, ExecEventType::Exit, 0);
  EXPECT_LT(isend_exit.time.s, 0.01);
  // MPI_Wait holds until the rendezvous completes.
  EXPECT_GT(res.rank_end[0].s, 0.8);
}

TEST(Engine, IrecvWaitCarriesRecvEvent) {
  ProgramBuilder b(8);
  auto& c4 = b.on(4);
  c4.enter("m");
  const int req = c4.irecv(0, 0);
  c4.compute(0.2);
  c4.wait(req);
  c4.exit();
  b.on(0).enter("m").compute(0.5).send(4, 0, 100.0).exit();
  for (Rank r : {1, 2, 3, 5, 6, 7}) b.on(r).enter("m").exit();
  const Topology topo = make_two_host();
  const Program prog = b.take();
  const RegionId wait_region = prog.regions.find("MPI_Wait");
  const ExecResult res = execute(topo, prog, exact_config());
  const auto& recv = find_event(res, 4, ExecEventType::Recv);
  EXPECT_GT(recv.time.s, 0.5);  // message only sent at 0.5s
  // The RECV event lies within the MPI_Wait region, not MPI_Irecv: the
  // innermost Enter preceding it must be MPI_Wait.
  const auto& events = res.per_rank[4];
  RegionId current;
  for (const auto& e : events) {
    if (e.type == ExecEventType::Enter) current = e.region;
    if (e.type == ExecEventType::Recv) {
      EXPECT_EQ(current, wait_region);
    }
  }
}

TEST(Engine, CrossSendRecvDoesNotDeadlock) {
  // Mutual rendezvous sendrecv: resolvable because posts are symmetric.
  ProgramBuilder b(8);
  const double bytes = 1 << 20;
  b.on(0).enter("m").sendrecv(4, bytes, 4, bytes, 0).exit();
  b.on(4).enter("m").sendrecv(0, bytes, 0, bytes, 0).exit();
  for (Rank r : {1, 2, 3, 5, 6, 7}) b.on(r).enter("m").exit();
  const Topology topo = make_two_host();
  EXPECT_NO_THROW(execute(topo, b.take(), exact_config()));
}

TEST(Engine, MutualBlockingRendezvousSendsDeadlock) {
  // Classic unsafe MPI: both sides blocking-send a rendezvous message
  // before receiving. Validation passes (counts balance); execution must
  // detect the deadlock.
  ProgramBuilder b(8);
  const double bytes = 1 << 20;
  b.on(0).enter("m").send(4, 0, bytes).recv(4, 1).exit();
  b.on(4).enter("m").send(0, 1, bytes).recv(0, 0).exit();
  for (Rank r : {1, 2, 3, 5, 6, 7}) b.on(r).enter("m").exit();
  const Topology topo = make_two_host();
  try {
    execute(topo, b.take(), exact_config());
    FAIL() << "expected deadlock";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
}

TEST(Engine, MutualEagerSendsAreFine) {
  ProgramBuilder b(8);
  b.on(0).enter("m").send(4, 0, 100.0).recv(4, 1).exit();
  b.on(4).enter("m").send(0, 1, 100.0).recv(0, 0).exit();
  for (Rank r : {1, 2, 3, 5, 6, 7}) b.on(r).enter("m").exit();
  const Topology topo = make_two_host();
  EXPECT_NO_THROW(execute(topo, b.take(), exact_config()));
}

TEST(Engine, NonOvertakingOrderPreserved) {
  // Two same-tag messages must match in order; the second cannot arrive
  // "before" the first even though it is smaller.
  ProgramBuilder b(8);
  b.on(0).enter("m").send(4, 0, 50000.0).send(4, 0, 10.0).exit();
  b.on(4).enter("m").recv(0, 0).recv(0, 0).exit();
  const Topology topo = make_two_host();
  for (Rank r : {1, 2, 3, 5, 6, 7}) b.on(r).enter("m").exit();
  const ExecResult res = execute(topo, b.take(), exact_config());
  const auto& recv1 = find_event(res, 4, ExecEventType::Recv, 0);
  const auto& recv2 = find_event(res, 4, ExecEventType::Recv, 1);
  EXPECT_DOUBLE_EQ(recv1.bytes, 50000.0);
  EXPECT_DOUBLE_EQ(recv2.bytes, 10.0);
  EXPECT_GE(recv2.time.s, recv1.time.s);
}

TEST(Engine, EventStreamsMonotonePerRank) {
  ProgramBuilder b(8);
  for (Rank r = 0; r < 8; ++r) {
    auto& c = b.on(r);
    c.enter("m");
    for (int i = 0; i < 5; ++i) {
      c.compute(0.001);
      c.barrier();
      c.allreduce(64.0);
    }
    c.exit();
  }
  const Topology topo = make_two_host(1.0, 0.3);
  const ExecResult res = execute(topo, b.take(), exact_config());
  for (const auto& events : res.per_rank) {
    for (std::size_t i = 1; i < events.size(); ++i)
      EXPECT_LE(events[i - 1].time.s, events[i].time.s);
  }
}

TEST(Engine, BalancedEnterExitPerRank) {
  ProgramBuilder b(8);
  for (Rank r = 0; r < 8; ++r)
    b.on(r).enter("a").enter("b").compute(0.01).exit().barrier().exit();
  const Topology topo = make_two_host();
  const ExecResult res = execute(topo, b.take(), exact_config());
  for (const auto& events : res.per_rank) {
    int depth = 0;
    for (const auto& e : events) {
      if (e.type == ExecEventType::Enter) ++depth;
      if (e.type == ExecEventType::Exit ||
          e.type == ExecEventType::CollExit)
        --depth;
      EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
  }
}

TEST(Engine, DeterministicAcrossRuns) {
  auto build = [] {
    ProgramBuilder b(8);
    for (Rank r = 0; r < 8; ++r) {
      auto& c = b.on(r);
      c.enter("m");
      c.compute(0.01 * (r + 1));
      c.sendrecv((r + 1) % 8, 2048.0, (r + 7) % 8, 2048.0, 0);
      c.allreduce(64.0);
      c.exit();
    }
    return b.take();
  };
  // Jittery topology this time.
  simnet::Topology topo = make_two_host();
  const Program p1 = build();
  const Program p2 = build();
  EngineConfig cfg = exact_config();
  cfg.seed = 99;
  const ExecResult a = execute(topo, p1, cfg);
  const ExecResult b2 = execute(topo, p2, cfg);
  ASSERT_EQ(a.per_rank.size(), b2.per_rank.size());
  for (std::size_t r = 0; r < a.per_rank.size(); ++r) {
    ASSERT_EQ(a.per_rank[r].size(), b2.per_rank[r].size());
    for (std::size_t i = 0; i < a.per_rank[r].size(); ++i)
      EXPECT_DOUBLE_EQ(a.per_rank[r][i].time.s, b2.per_rank[r][i].time.s);
  }
}

TEST(Engine, RankCountMismatchThrows) {
  ProgramBuilder b(4);
  for (Rank r = 0; r < 4; ++r) b.on(r).enter("m").exit();
  const Topology topo = make_two_host();  // 8 ranks
  EXPECT_THROW(execute(topo, b.take(), exact_config()), Error);
}

TEST(Engine, StatsCountMessagesAndCollectives) {
  ProgramBuilder b(8);
  for (Rank r = 0; r < 8; ++r) {
    auto& c = b.on(r);
    c.enter("m").barrier();
    if (r == 0) c.send(1, 0, 10.0);
    if (r == 1) c.recv(0, 0);
    c.barrier().exit();
  }
  const Topology topo = make_two_host();
  const ExecResult res = execute(topo, b.take(), exact_config());
  EXPECT_EQ(res.stats.messages, 1u);
  EXPECT_EQ(res.stats.collectives, 2u);
  EXPECT_GT(res.stats.events, 0u);
  EXPECT_GT(res.stats.sweeps, 0u);
}

}  // namespace
}  // namespace metascope::simmpi
