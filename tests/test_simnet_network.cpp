#include "simnet/network.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "simnet/presets.hpp"

namespace metascope::simnet {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : topo_(make_viola_experiment1()) {}
  Topology topo_;
};

TEST_F(NetworkTest, DelayMomentsMatchLinkSpec) {
  Network net(topo_, Rng(1));
  // Ranks 16 and 18 sit on different FZJ nodes (internal link).
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(net.sample_delay(16, 18, 0.0));
  EXPECT_NEAR(s.mean(), 21.5e-6, 0.5e-6);
  EXPECT_NEAR(s.stddev(), 0.814e-6, 0.1e-6);
}

TEST_F(NetworkTest, BandwidthTermAddsLinearly) {
  Network net(topo_, Rng(2));
  const double bytes = 1e6;
  RunningStats small;
  RunningStats big;
  for (int i = 0; i < 5000; ++i) {
    small.add(net.sample_delay(16, 18, 0.0));
    big.add(net.sample_delay(16, 18, bytes));
  }
  const auto& link = topo_.link_between(16, 18);
  EXPECT_NEAR(big.mean() - small.mean(), bytes / link.bandwidth_bps,
              0.1e-6);
}

TEST_F(NetworkTest, DelaysNeverBelowPhysicalFloor) {
  Network net(topo_, Rng(3));
  for (int i = 0; i < 50000; ++i) {
    // route factor >= 1 - asymmetry, so the floor scales accordingly.
    const double floor =
        0.25 * topo_.link_between(0, 16).latency_mean * (1.0 - 0.08);
    EXPECT_GE(net.sample_delay(0, 16, 0.0), floor);
  }
}

TEST_F(NetworkTest, ExternalRouteFactorsAsymmetric) {
  Network net(topo_, Rng(4));
  // Rank 0 (FH-BRS) <-> rank 16 (FZJ): external link with 8% asymmetry.
  const double fwd = net.route_factor(0, 16);
  const double bwd = net.route_factor(16, 0);
  EXPECT_NE(fwd, bwd);
  EXPECT_GE(fwd, 0.92);
  EXPECT_LE(fwd, 1.08);
  EXPECT_GE(bwd, 0.92);
  EXPECT_LE(bwd, 1.08);
}

TEST_F(NetworkTest, InternalRoutesSymmetricWithoutAsymmetry) {
  Network net(topo_, Rng(5));
  // FZJ internal link has no configured asymmetry.
  EXPECT_DOUBLE_EQ(net.route_factor(16, 18), 1.0);
  EXPECT_DOUBLE_EQ(net.route_factor(18, 16), 1.0);
}

TEST_F(NetworkTest, RouteFactorsStableAcrossInstances) {
  Network a(topo_, Rng(6), 123);
  Network b(topo_, Rng(999), 123);
  EXPECT_DOUBLE_EQ(a.route_factor(0, 16), b.route_factor(0, 16));
  Network c(topo_, Rng(6), 124);
  EXPECT_NE(a.route_factor(0, 16), c.route_factor(0, 16));
}

TEST_F(NetworkTest, RouteFactorIsPerNodeNotPerRank) {
  Network net(topo_, Rng(7));
  // Ranks 16 and 17 share an FZJ node; their external routes to rank 0
  // must coincide.
  EXPECT_DOUBLE_EQ(net.route_factor(16, 0), net.route_factor(17, 0));
}

TEST_F(NetworkTest, ExpectedDelayIncludesRouteFactor) {
  Network net(topo_, Rng(8));
  const auto& link = topo_.link_between(0, 16);
  EXPECT_NEAR(net.expected_delay(0, 16, 0.0),
              link.latency_mean * net.route_factor(0, 16), 1e-12);
}

TEST_F(NetworkTest, SampleStreamsDeterministic) {
  Network a(topo_, Rng(11));
  Network b(topo_, Rng(11));
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.sample_delay(0, 16, 100.0),
                     b.sample_delay(0, 16, 100.0));
}

TEST_F(NetworkTest, LatencyStddevPassThrough) {
  Network net(topo_, Rng(12));
  EXPECT_DOUBLE_EQ(net.latency_stddev(16, 18), 0.814e-6);
  EXPECT_DOUBLE_EQ(net.latency_stddev(0, 16), 3.86e-6);
}

}  // namespace
}  // namespace metascope::simnet
