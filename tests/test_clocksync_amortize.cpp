// Tests for the forward-amortization repair pass (extension): after it
// runs, no matched receive precedes its send, per-process event order is
// intact, and untouched intervals keep their lengths.
#include <gtest/gtest.h>

#include "clocksync/amortization.hpp"
#include "clocksync/clock_condition.hpp"
#include "clocksync/correction.hpp"
#include "common/error.hpp"
#include "simnet/presets.hpp"
#include "workloads/clockbench.hpp"
#include "workloads/experiment.hpp"

namespace metascope::clocksync {
namespace {

tracing::TraceCollection violating_traces(tracing::SyncScheme scheme) {
  const auto topo = simnet::make_viola_experiment1();
  workloads::ClockBenchConfig bc;
  bc.rounds = 300;
  bc.pad_work = 0.05;
  const auto prog = workloads::build_clock_bench(topo.num_ranks(), bc);
  workloads::ExperimentConfig cfg;
  cfg.measurement.scheme = scheme;
  auto data = workloads::run_experiment(topo, prog, cfg);
  synchronize(data.traces);
  return std::move(data.traces);
}

TEST(Amortization, RemovesAllViolations) {
  auto tc = violating_traces(tracing::SyncScheme::FlatSingle);
  const auto before = check_clock_condition(tc);
  ASSERT_GT(before.violations, 0u);
  const auto rep = amortize_violations(tc);
  EXPECT_TRUE(rep.converged);
  EXPECT_GE(rep.repaired_receives, before.violations);
  const auto after = check_clock_condition(tc);
  EXPECT_EQ(after.violations, 0u);
}

TEST(Amortization, PreservesPerRankEventOrder) {
  auto tc = violating_traces(tracing::SyncScheme::FlatSingle);
  amortize_violations(tc);
  for (const auto& t : tc.ranks) {
    for (std::size_t i = 1; i < t.events.size(); ++i)
      ASSERT_LE(t.events[i - 1].time, t.events[i].time)
          << "rank " << t.rank << " event " << i;
  }
}

TEST(Amortization, NoopOnCleanTraces) {
  auto tc = violating_traces(tracing::SyncScheme::HierarchicalTwo);
  ASSERT_EQ(check_clock_condition(tc).violations, 0u);
  const auto snapshot = tc.ranks;
  const auto rep = amortize_violations(tc);
  EXPECT_EQ(rep.repaired_receives, 0u);
  EXPECT_EQ(rep.passes, 1u);
  EXPECT_EQ(tc.ranks, snapshot);
}

TEST(Amortization, ShiftsDecayAwayFromTheViolation) {
  // Build a single-violation trace by hand and check the local shape.
  tracing::TraceCollection tc;
  tc.scheme = tracing::SyncScheme::None;
  tc.ranks.resize(2);
  tc.ranks[0].rank = 0;
  tc.ranks[1].rank = 1;
  auto ev = [](tracing::EventType type, double time) {
    tracing::Event e;
    e.type = type;
    e.time = time;
    e.region = RegionId{0};
    return e;
  };
  auto msg = [&](tracing::EventType type, double time, Rank peer) {
    tracing::Event e = ev(type, time);
    e.peer = peer;
    e.tag = 0;
    return e;
  };
  tc.ranks[0].events = {ev(tracing::EventType::Enter, 0.0),
                        msg(tracing::EventType::Send, 1.0, 1),
                        ev(tracing::EventType::Exit, 2.0)};
  tc.ranks[1].events = {ev(tracing::EventType::Enter, 0.0),
                        msg(tracing::EventType::Recv, 0.9995, 0),  // early!
                        ev(tracing::EventType::Exit, 1.0),
                        ev(tracing::EventType::Enter, 1.5),
                        ev(tracing::EventType::Exit, 2.0)};
  AmortizationConfig cfg;
  cfg.min_message_gap = 1e-6;
  cfg.decay_window = 0.01;
  const auto rep = amortize_violations(tc, cfg);
  EXPECT_EQ(rep.repaired_receives, 1u);
  EXPECT_TRUE(rep.converged);
  // The receive moved past the send.
  EXPECT_GE(tc.ranks[1].events[1].time, 1.0 + 1e-6 - 1e-12);
  // The following Exit at 1.0 also shifted (order preserved) but less
  // than the receive did...
  EXPECT_GT(tc.ranks[1].events[2].time, 1.0);
  // ...and events a full decay window later are untouched.
  EXPECT_DOUBLE_EQ(tc.ranks[1].events[3].time, 1.5);
  EXPECT_DOUBLE_EQ(tc.ranks[1].events[4].time, 2.0);
  // The sender's stream is untouched.
  EXPECT_DOUBLE_EQ(tc.ranks[0].events[1].time, 1.0);
}

TEST(Amortization, CascadingViolationsConverge) {
  // A chain: r0 -> r1 -> r2, each receive stamped slightly before its
  // send; repairing r1's receive pushes r1's own send, re-violating the
  // pair r1 -> r2, which the next pass repairs.
  tracing::TraceCollection tc;
  tc.scheme = tracing::SyncScheme::None;
  tc.ranks.resize(3);
  for (int r = 0; r < 3; ++r) tc.ranks[static_cast<std::size_t>(r)].rank = r;
  auto msg = [](tracing::EventType type, double time, Rank peer) {
    tracing::Event e;
    e.type = type;
    e.time = time;
    e.peer = peer;
    e.tag = 0;
    return e;
  };
  auto ev = [](tracing::EventType type, double time) {
    tracing::Event e;
    e.type = type;
    e.time = time;
    e.region = RegionId{0};
    return e;
  };
  tc.ranks[0].events = {ev(tracing::EventType::Enter, 0.0),
                        msg(tracing::EventType::Send, 1.0, 1),
                        ev(tracing::EventType::Exit, 1.1)};
  tc.ranks[1].events = {ev(tracing::EventType::Enter, 0.0),
                        msg(tracing::EventType::Recv, 0.998, 0),
                        msg(tracing::EventType::Send, 0.999, 2),
                        ev(tracing::EventType::Exit, 1.1)};
  tc.ranks[2].events = {ev(tracing::EventType::Enter, 0.0),
                        msg(tracing::EventType::Recv, 0.9985, 1),
                        ev(tracing::EventType::Exit, 1.1)};
  const auto rep = amortize_violations(tc);
  EXPECT_TRUE(rep.converged);
  EXPECT_GE(rep.passes, 2u);
  EXPECT_EQ(check_clock_condition(tc).violations, 0u);
}

TEST(Amortization, RequiresSynchronizedInput) {
  const auto topo = simnet::make_viola_experiment1();
  const auto prog = workloads::build_clock_bench(32, {});
  workloads::ExperimentConfig cfg;
  cfg.measurement.scheme = tracing::SyncScheme::FlatTwo;
  auto data = workloads::run_experiment(topo, prog, cfg);
  EXPECT_THROW(amortize_violations(data.traces), Error);
}

TEST(Amortization, RejectsBadConfig) {
  auto tc = violating_traces(tracing::SyncScheme::HierarchicalTwo);
  AmortizationConfig cfg;
  cfg.decay_window = 0.0;
  EXPECT_THROW(amortize_violations(tc, cfg), Error);
  cfg.decay_window = 0.01;
  cfg.min_message_gap = -1.0;
  EXPECT_THROW(amortize_violations(tc, cfg), Error);
}

}  // namespace
}  // namespace metascope::clocksync
