#!/usr/bin/env python3
"""Structurally validate a Chrome Trace Event JSON file.

Checks the invariants the exporter (src/telemetry/trace_export.cpp)
guarantees by construction, so CI catches any regression that would
break loading the trace in Perfetto / chrome://tracing:

  * the document is an object with a "traceEvents" array;
  * every "B" (duration begin) on a thread track is closed by a
    matching "E" — balanced and properly nested per tid;
  * timestamps never decrease within one thread track (metadata "M"
    events carry no timestamp and are skipped);
  * "otherData" carries the recorder's explicit drop accounting
    (ring_capacity, dropped_events, emitted_events).

Usage: validate_chrome_trace.py trace.json [--min-events N]
Exits 0 when valid, 1 with a diagnostic otherwise.
"""

import argparse
import json
import sys


def validate(doc, min_events):
    if not isinstance(doc, dict):
        return "top-level value is not an object"
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return "missing traceEvents array"

    depth = {}
    last_ts = {}
    emitted = 0
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            continue
        emitted += 1
        if ph not in ("B", "E", "i"):
            return f"event {i}: unexpected phase {ph!r}"
        tid = e.get("tid")
        ts = e.get("ts")
        if tid is None or ts is None:
            return f"event {i}: missing tid or ts"
        if tid in last_ts and ts < last_ts[tid]:
            return (f"event {i}: ts {ts} < previous {last_ts[tid]} "
                    f"on tid {tid}")
        last_ts[tid] = ts
        if ph == "B":
            depth[tid] = depth.get(tid, 0) + 1
        elif ph == "E":
            if depth.get(tid, 0) == 0:
                return f"event {i}: E without open B on tid {tid}"
            depth[tid] -= 1
    for tid, d in depth.items():
        if d != 0:
            return f"tid {tid}: {d} unclosed B event(s)"

    other = doc.get("otherData")
    if not isinstance(other, dict):
        return "missing otherData"
    for key in ("ring_capacity", "dropped_events", "emitted_events"):
        if key not in other:
            return f"otherData missing {key!r}"
    if other["emitted_events"] != emitted:
        return (f"otherData.emitted_events {other['emitted_events']} != "
                f"{emitted} counted")
    if emitted < min_events:
        return f"only {emitted} events (expected >= {min_events})"
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome Trace Event JSON file")
    ap.add_argument("--min-events", type=int, default=1,
                    help="fail if fewer non-metadata events (default 1)")
    args = ap.parse_args()

    with open(args.trace, encoding="utf-8") as f:
        doc = json.load(f)
    problem = validate(doc, args.min_events)
    if problem:
        print(f"{args.trace}: INVALID: {problem}", file=sys.stderr)
        return 1
    tracks = sum(1 for e in doc["traceEvents"]
                 if e.get("ph") == "M" and e.get("name") == "thread_name")
    print(f"{args.trace}: ok — {doc['otherData']['emitted_events']} events "
          f"on {tracks} thread track(s), "
          f"dropped {sum(doc['otherData']['dropped_events'].values())}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
