// make_fuzz_corpus — generates the seed corpus for the fuzz harnesses.
//
// Usage: make_fuzz_corpus <outdir>
//
// Runs a miniature two-metahost experiment, encodes its real defs and
// per-rank trace files — current (v3 columnar) format by default, plus
// one rank in each legacy row-wise format — and writes them together
// with structured mutants (truncations, bad magic, future version, and
// v3-specific corners: bad type nibbles, count mismatches, broken
// column frames, bad XOR lead bytes / scale indices / residual widths)
// into one subdirectory per harness:
//
//   <outdir>/trace_decode/   defs + trace bytes (also seeds sync_decode)
//   <outdir>/sync_decode/    trace bytes rich in sync records
//   <outdir>/config_json/    valid experiment configs
//
// Seeding with real encodings matters: libFuzzer mutates from these, so
// it starts past the magic/version gate instead of spending its budget
// rediscovering four magic bytes. Deterministic output (fixed seeds) —
// CI caches the corpus keyed on the harness sources.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "tracing/epilog_io.hpp"
#include "workloads/config.hpp"
#include "workloads/experiment.hpp"

namespace fs = std::filesystem;
using namespace metascope;

namespace {

const char* kSeedConfig = R"({
  "name": "fuzz-seed",
  "seed": 7,
  "topology": {
    "metahosts": [
      {"name": "A", "nodes": 1, "cpus_per_node": 2, "latency_us": 20},
      {"name": "B", "nodes": 1, "cpus_per_node": 2, "latency_us": 30}
    ],
    "external": {"latency_us": 500, "bandwidth_gbps": 1.0},
    "placement": [
      {"metahost": 0, "nodes": 1, "procs_per_node": 2},
      {"metahost": 1, "nodes": 1, "procs_per_node": 2}
    ]
  },
  "workload": {"kind": "metatrace", "coupling_steps": 2,
               "cg_iterations": 4, "field_mb_total": 8},
  "sync": "hierarchical-two"
})";

const char* kClockbenchConfig = R"({
  "name": "fuzz-clockbench",
  "topology": {
    "metahosts": [{"name": "A", "nodes": 1, "cpus_per_node": 2}],
    "placement": [{"metahost": 0, "nodes": 1, "procs_per_node": 2}]
  },
  "workload": {"kind": "clockbench", "rounds": 16},
  "sync": "flat-two"
})";

const char* kPatternConfig = R"({
  "name": "fuzz-pattern",
  "topology": {
    "metahosts": [{"name": "A", "nodes": 1, "cpus_per_node": 2}],
    "placement": [{"metahost": 0, "nodes": 1, "procs_per_node": 2}]
  },
  "workload": {"kind": "pattern-demo", "pattern": "late-sender"},
  "sync": "none"
})";

void put(const fs::path& dir, const std::string& name,
         const std::vector<std::uint8_t>& bytes) {
  write_file_bytes((dir / name).string(), bytes);
  std::printf("  %s (%zu bytes)\n", (dir / name).string().c_str(),
              bytes.size());
}

void put_text(const fs::path& dir, const std::string& name,
              const std::string& text) {
  put(dir, name,
      std::vector<std::uint8_t>(text.begin(), text.end()));
}

/// Structured mutants of a valid encoding: the decode-path corners a
/// random mutator takes longest to reach.
void put_mutants(const fs::path& dir, const std::string& stem,
                 const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() > 1) {
    put(dir, stem + "_trunc_half",
        std::vector<std::uint8_t>(bytes.begin(),
                                  bytes.begin() +
                                      static_cast<std::ptrdiff_t>(
                                          bytes.size() / 2)));
    put(dir, stem + "_trunc_1",
        std::vector<std::uint8_t>(bytes.begin(), bytes.end() - 1));
  }
  if (bytes.size() >= 8) {
    auto bad_magic = bytes;
    bad_magic[0] ^= 0xFF;
    put(dir, stem + "_bad_magic", bad_magic);
    auto bad_version = bytes;
    bad_version[4] = 0x7F;  // far-future format version
    put(dir, stem + "_bad_version", bad_version);
  }
}

/// A minimal v3 trace whose header layout is byte-addressable: rank 1,
/// no sync records, two Enter events. Offsets (all varints one byte):
/// rank@8, nsync@9, nev@10, per-type counts@11..15, type stream@16,
/// time-column frame length@17, time payload@18.
std::vector<std::uint8_t> small_v3_trace() {
  tracing::LocalTrace t;
  t.rank = 1;
  for (int i = 1; i <= 2; ++i) {
    tracing::Event e;
    e.type = tracing::EventType::Enter;
    e.time = 1.0e-3 * i;
    e.region = RegionId{i};
    t.events.push_back(e);
  }
  return tracing::encode_local_trace(t, 3);
}

/// Replaces the time column of the minimal v3 trace with a hand-built
/// payload, dropping everything after it (the decoder throws inside the
/// time column, so later columns are never reached).
std::vector<std::uint8_t> with_time_payload(
    const std::vector<std::uint8_t>& payload) {
  auto bytes = small_v3_trace();
  bytes.resize(17);  // keep header + type stream, drop the time frame
  bytes.push_back(static_cast<std::uint8_t>(payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

/// v3-specific structured mutants: columnar-format corners (type-stream
/// nibbles, per-type count cross-checks, column frames) and the double
/// codec's validated fields (XOR lead bytes, scale indices, residual
/// widths). Each hits one exact ErrorCode in the corruption matrix.
void put_v3_mutants(const fs::path& dir) {
  const auto base = small_v3_trace();

  auto bad_nibble = base;
  bad_nibble[16] = 0x07;  // event type 7: no such type
  put(dir, "v3_bad_nibble", bad_nibble);

  auto type_mismatch = base;
  type_mismatch[16] = 0x10;  // second nibble says Exit; header says Enter
  put(dir, "v3_type_count_mismatch", type_mismatch);

  auto count_sum = base;
  count_sum[11] = 3;  // per-type counts sum to 3, header declares 2 events
  put(dir, "v3_count_sum_mismatch", count_sum);

  auto col_len = base;
  col_len[17] += 1;  // frame longer than the codec consumes
  put(dir, "v3_column_len_mismatch", col_len);

  put(dir, "v3_trunc_column",  // cut mid time column
      std::vector<std::uint8_t>(base.begin(), base.begin() + 19));

  auto overrun = base;
  overrun[17] = 200;  // frame declares more bytes than the file holds
  put(dir, "v3_column_overrun", overrun);

  // Codec-level corners: mode byte + the first validated field.
  put(dir, "v3_bad_xor_lead", with_time_payload({0x01, 0x41}));      // 65>64
  put(dir, "v3_bad_scale_index", with_time_payload({0x02, 0xC8}));   // 200
  put(dir, "v3_bad_res_width", with_time_payload({0x04, 0x00, 0x41}));
  put(dir, "v3_bad_mode", with_time_payload({0x2A}));  // unknown mode 42
}

/// Truncated-mid-block mutants for the windowed reader: a trace large
/// enough that the streaming analyzer needs several decode windows per
/// column, cut at points that land inside the later columns (past the
/// type stream and the time column), so the lazy block-decode path hits
/// end-of-file in the middle of a chunked cursor refill rather than at
/// a frame boundary.
void put_midblock_mutants(const fs::path& dir) {
  tracing::LocalTrace t;
  t.rank = 2;
  double now = 0.0;
  for (int i = 0; i < 400; ++i) {
    tracing::Event enter;
    enter.type = tracing::EventType::Enter;
    enter.time = now;
    enter.region = RegionId{1 + (i % 5)};
    t.events.push_back(enter);
    tracing::Event send;
    send.type = i % 2 == 0 ? tracing::EventType::Send
                           : tracing::EventType::Recv;
    send.time = now + 1e-5;
    send.peer = (i * 7) % 4;
    send.tag = i;
    send.bytes = 64.0 * (1 + i % 9);
    send.comm = CommId{0};
    t.events.push_back(send);
    tracing::Event exit;
    exit.type = tracing::EventType::Exit;
    exit.time = now + 3e-5;
    t.events.push_back(exit);
    now += 4.7e-5;
  }
  const auto bytes = tracing::encode_local_trace(t, 3);
  for (const int pct : {55, 70, 85, 97}) {
    put(dir, "v3_trunc_midblock_" + std::to_string(pct),
        std::vector<std::uint8_t>(
            bytes.begin(),
            bytes.begin() + static_cast<std::ptrdiff_t>(
                                bytes.size() * static_cast<std::size_t>(pct) /
                                100)));
  }
  put(dir, "v3_multiwindow", bytes);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <outdir>\n", argv[0]);
    return 2;
  }
  try {
    const fs::path out = argv[1];
    const fs::path trace_dir = out / "trace_decode";
    const fs::path sync_dir = out / "sync_decode";
    const fs::path config_dir = out / "config_json";
    fs::create_directories(trace_dir);
    fs::create_directories(sync_dir);
    fs::create_directories(config_dir);

    workloads::ExperimentSpec spec =
        workloads::parse_experiment(Json::parse(kSeedConfig));
    auto data =
        workloads::run_experiment(spec.topology, spec.program, spec.config);

    const auto defs = tracing::encode_defs(data.traces);
    put(trace_dir, "defs", defs);
    put_mutants(trace_dir, "defs", defs);
    for (const auto& t : data.traces.ranks) {
      const auto bytes = tracing::encode_local_trace(t);
      const std::string stem = "rank" + std::to_string(t.rank);
      put(trace_dir, stem, bytes);
      put(sync_dir, stem, bytes);
      if (t.rank == 0) {
        put_mutants(trace_dir, stem, bytes);
        // The legacy row-wise encodings stay decodable behind the
        // version switch — seed both so mutation keeps covering them.
        put(trace_dir, stem + "_v1", tracing::encode_local_trace(t, 1));
        put(trace_dir, stem + "_v2", tracing::encode_local_trace(t, 2));
      }
    }
    put_v3_mutants(trace_dir);
    put_midblock_mutants(trace_dir);
    // An empty trace is valid too — seed the minimal accepting input.
    tracing::LocalTrace empty;
    empty.rank = 0;
    put(trace_dir, "empty_trace", tracing::encode_local_trace(empty));

    put_text(config_dir, "metatrace.json", kSeedConfig);
    put_text(config_dir, "clockbench.json", kClockbenchConfig);
    put_text(config_dir, "pattern.json", kPatternConfig);

    std::printf("corpus written to %s\n", out.string().c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "make_fuzz_corpus: %s\n", e.what());
    return 1;
  }
}
