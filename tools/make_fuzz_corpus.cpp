// make_fuzz_corpus — generates the seed corpus for the fuzz harnesses.
//
// Usage: make_fuzz_corpus <outdir>
//
// Runs a miniature two-metahost experiment, encodes its real defs and
// per-rank trace files, and writes them (plus a handful of structured
// mutants: truncations, a bad magic, a future version) into one
// subdirectory per harness:
//
//   <outdir>/trace_decode/   defs + trace bytes (also seeds sync_decode)
//   <outdir>/sync_decode/    trace bytes rich in sync records
//   <outdir>/config_json/    valid experiment configs
//
// Seeding with real encodings matters: libFuzzer mutates from these, so
// it starts past the magic/version gate instead of spending its budget
// rediscovering four magic bytes. Deterministic output (fixed seeds) —
// CI caches the corpus keyed on the harness sources.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/binary_io.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "tracing/epilog_io.hpp"
#include "workloads/config.hpp"
#include "workloads/experiment.hpp"

namespace fs = std::filesystem;
using namespace metascope;

namespace {

const char* kSeedConfig = R"({
  "name": "fuzz-seed",
  "seed": 7,
  "topology": {
    "metahosts": [
      {"name": "A", "nodes": 1, "cpus_per_node": 2, "latency_us": 20},
      {"name": "B", "nodes": 1, "cpus_per_node": 2, "latency_us": 30}
    ],
    "external": {"latency_us": 500, "bandwidth_gbps": 1.0},
    "placement": [
      {"metahost": 0, "nodes": 1, "procs_per_node": 2},
      {"metahost": 1, "nodes": 1, "procs_per_node": 2}
    ]
  },
  "workload": {"kind": "metatrace", "coupling_steps": 2,
               "cg_iterations": 4, "field_mb_total": 8},
  "sync": "hierarchical-two"
})";

const char* kClockbenchConfig = R"({
  "name": "fuzz-clockbench",
  "topology": {
    "metahosts": [{"name": "A", "nodes": 1, "cpus_per_node": 2}],
    "placement": [{"metahost": 0, "nodes": 1, "procs_per_node": 2}]
  },
  "workload": {"kind": "clockbench", "rounds": 16},
  "sync": "flat-two"
})";

const char* kPatternConfig = R"({
  "name": "fuzz-pattern",
  "topology": {
    "metahosts": [{"name": "A", "nodes": 1, "cpus_per_node": 2}],
    "placement": [{"metahost": 0, "nodes": 1, "procs_per_node": 2}]
  },
  "workload": {"kind": "pattern-demo", "pattern": "late-sender"},
  "sync": "none"
})";

void put(const fs::path& dir, const std::string& name,
         const std::vector<std::uint8_t>& bytes) {
  write_file_bytes((dir / name).string(), bytes);
  std::printf("  %s (%zu bytes)\n", (dir / name).string().c_str(),
              bytes.size());
}

void put_text(const fs::path& dir, const std::string& name,
              const std::string& text) {
  put(dir, name,
      std::vector<std::uint8_t>(text.begin(), text.end()));
}

/// Structured mutants of a valid encoding: the decode-path corners a
/// random mutator takes longest to reach.
void put_mutants(const fs::path& dir, const std::string& stem,
                 const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() > 1) {
    put(dir, stem + "_trunc_half",
        std::vector<std::uint8_t>(bytes.begin(),
                                  bytes.begin() +
                                      static_cast<std::ptrdiff_t>(
                                          bytes.size() / 2)));
    put(dir, stem + "_trunc_1",
        std::vector<std::uint8_t>(bytes.begin(), bytes.end() - 1));
  }
  if (bytes.size() >= 8) {
    auto bad_magic = bytes;
    bad_magic[0] ^= 0xFF;
    put(dir, stem + "_bad_magic", bad_magic);
    auto bad_version = bytes;
    bad_version[4] = 0x7F;  // far-future format version
    put(dir, stem + "_bad_version", bad_version);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <outdir>\n", argv[0]);
    return 2;
  }
  try {
    const fs::path out = argv[1];
    const fs::path trace_dir = out / "trace_decode";
    const fs::path sync_dir = out / "sync_decode";
    const fs::path config_dir = out / "config_json";
    fs::create_directories(trace_dir);
    fs::create_directories(sync_dir);
    fs::create_directories(config_dir);

    workloads::ExperimentSpec spec =
        workloads::parse_experiment(Json::parse(kSeedConfig));
    auto data =
        workloads::run_experiment(spec.topology, spec.program, spec.config);

    const auto defs = tracing::encode_defs(data.traces);
    put(trace_dir, "defs", defs);
    put_mutants(trace_dir, "defs", defs);
    for (const auto& t : data.traces.ranks) {
      const auto bytes = tracing::encode_local_trace(t);
      const std::string stem = "rank" + std::to_string(t.rank);
      put(trace_dir, stem, bytes);
      put(sync_dir, stem, bytes);
      if (t.rank == 0) put_mutants(trace_dir, stem, bytes);
    }
    // An empty trace is valid too — seed the minimal accepting input.
    tracing::LocalTrace empty;
    empty.rank = 0;
    put(trace_dir, "empty_trace", tracing::encode_local_trace(empty));

    put_text(config_dir, "metatrace.json", kSeedConfig);
    put_text(config_dir, "clockbench.json", kClockbenchConfig);
    put_text(config_dir, "pattern.json", kPatternConfig);

    std::printf("corpus written to %s\n", out.string().c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "make_fuzz_corpus: %s\n", e.what());
    return 1;
  }
}
