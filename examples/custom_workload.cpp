// Writing your own workload: a master/worker parameter sweep with a
// deliberately skewed work distribution, spread over two metahosts. The
// example shows the fluent ProgramBuilder API, sub-communicators, and
// how the grid patterns separate "slow hardware" from "bad distribution".
//
// Usage: custom_workload [tasks_per_worker]   (default 12)
#include <cstdio>
#include <cstdlib>

#include "analysis/analyzer.hpp"
#include "clocksync/correction.hpp"
#include "report/render.hpp"
#include "simmpi/program.hpp"
#include "simnet/topology.hpp"
#include "workloads/experiment.hpp"

using namespace metascope;

namespace {

simnet::Topology two_sites() {
  simnet::Topology topo;
  simnet::MetahostSpec hq;
  hq.name = "HQ-Cluster";
  hq.num_nodes = 4;
  hq.cpus_per_node = 2;
  hq.internal = simnet::LinkSpec{microseconds(25), microseconds(1), 1e9};
  simnet::MetahostSpec remote = hq;
  remote.name = "Remote-Cluster";
  const MetahostId a = topo.add_metahost(hq);
  const MetahostId b = topo.add_metahost(remote);
  simnet::LinkSpec wan{microseconds(900), microseconds(5), 1.25e9};
  wan.asymmetry = 0.05;
  topo.set_external_link(a, b, wan);
  topo.place_block(a, 4, 2);  // ranks 0..7: master 0 + 7 local workers
  topo.place_block(b, 4, 2);  // ranks 8..15: remote workers
  return topo;
}

simmpi::Program master_worker(int nranks, int tasks_per_worker) {
  simmpi::ProgramBuilder b(nranks);
  std::vector<Rank> workers;
  for (Rank r = 1; r < nranks; ++r) workers.push_back(r);
  b.comms().create("comm_workers", workers);

  constexpr int kTaskTag = 1;
  constexpr int kResultTag = 2;
  constexpr double kTaskBytes = 32 * 1024;
  constexpr double kResultBytes = 4 * 1024;

  auto& master = b.on(0);
  master.enter("main").enter("distribute");
  for (int t = 0; t < tasks_per_worker; ++t)
    for (Rank w = 1; w < nranks; ++w)
      master.send(w, kTaskTag, kTaskBytes);
  master.exit();
  master.enter("collect");
  for (int t = 0; t < tasks_per_worker; ++t)
    for (Rank w = 1; w < nranks; ++w)
      master.recv(w, kResultTag);
  master.exit();
  master.barrier();
  master.exit();

  for (Rank w = 1; w < nranks; ++w) {
    auto& worker = b.on(w);
    worker.enter("main");
    for (int t = 0; t < tasks_per_worker; ++t) {
      worker.enter("fetch_task");
      worker.recv(0, kTaskTag);
      worker.exit();
      worker.enter("process_task");
      // Bad distribution: task cost grows with the worker id, so late
      // workers are overloaded regardless of which cluster they sit on.
      worker.compute(0.002 * (1.0 + 0.15 * w));
      worker.exit();
      worker.enter("report_result");
      worker.send(0, kResultTag, kResultBytes);
      worker.exit();
    }
    worker.barrier();
    worker.exit();
  }
  return b.take();
}

}  // namespace

int main(int argc, char** argv) {
  const int tasks = argc > 1 ? std::atoi(argv[1]) : 12;
  const auto topo = two_sites();
  const auto prog = master_worker(topo.num_ranks(), tasks);

  workloads::ExperimentConfig cfg;
  auto data = workloads::run_experiment(topo, prog, cfg);
  clocksync::synchronize(data.traces);
  const auto res = analysis::analyze_parallel(data.traces);
  const auto& ps = res.patterns;

  std::printf("%s\n", report::render_metric_tree(res.cube).c_str());
  std::printf("%s\n",
              report::render_call_tree(res.cube, ps.late_sender).c_str());

  // Per-metahost-pair breakdown (the fine-grained classification the
  // paper lists as future work): who waits for whom across the WAN?
  std::printf("Grid Late Sender by (waiter <- peer) metahost pair:\n");
  for (int wmh = 0; wmh < topo.num_metahosts(); ++wmh) {
    for (int pmh = 0; pmh < topo.num_metahosts(); ++pmh) {
      const double v = res.cube.pair_breakdown(
          ps.grid_late_sender, MetahostId{wmh}, MetahostId{pmh});
      if (v > 0.0)
        std::printf("  %-16s <- %-16s %8.3f s\n",
                    topo.metahost(MetahostId{wmh}).name.c_str(),
                    topo.metahost(MetahostId{pmh}).name.c_str(), v);
    }
  }
  std::printf(
      "\nReading the result: the master's 'collect' phase shows Late\n"
      "Sender waits that grow with worker id — a distribution problem,\n"
      "not a network problem; the grid breakdown shows the extra WAN\n"
      "penalty for remote workers on top of it.\n");
  return 0;
}
