// msc_run — the command-line front end: run a JSON-described experiment
// end to end and emit the analysis report plus a severity cube file.
//
// Usage:
//   msc_run <experiment.json> [--cube out.cubex] [--profile] [--amortize]
//           [--timeline] [--metrics out.json] [--progress]
//           [--trace-out trace.json] [--sample-interval-ms n]
//           [--patterns key[,key...]] [--list-patterns]
//           [--archive-dir dir] [--permissive] [--trace-format n]
//           [--stream] [--memory-budget bytes]
//           [--log-level {debug,info,warn,error,off}]
//
// --archive-dir routes the traces through the on-disk archive layer:
// the measured traces are written into a trace archive under the given
// directory and read back through the hardened ingestion path before
// analysis (so the analyzed data went through the same decode layer a
// post-mortem run would use). --permissive switches that read into
// permissive-recovery mode: undecodable ranks are quarantined and
// reported instead of aborting the run (see DESIGN.md "Ingestion
// hardening"). --permissive without --archive-dir is accepted and has
// no effect (in-memory traces never need decoding). --trace-format
// selects the trace format version the archive writes (1–3; default is
// the current columnar v3) — useful for producing legacy fixtures and
// for measuring v2-vs-v3 archive sizes; readers auto-detect.
//
// --stream analyzes the archive *out of core* instead of materializing
// it: clock synchronization runs first (streaming needs synchronized
// timestamps on disk), the synchronized traces are written as a v3
// archive under --archive-dir, and analysis::analyze_streaming replays
// them in bounded windows straight out of the mapped files.
// --memory-budget caps the decoded trace bytes resident across all
// ranks at once (default: a generous 4096-event window per rank). The
// severity cube is bit-identical to the in-memory analysis. --stream
// requires --archive-dir and the v3 format; --permissive composes
// (quarantined ranks stream zero events).
//
// --metrics writes the full telemetry snapshot (pipeline-stage spans,
// counters, histograms, run metadata, and — when the sampler ran — the
// time-resolved series) as JSON; --progress prints a rate-limited
// stage/percent line to stderr while the pipeline runs.
//
// --trace-out switches on the flight recorder and writes the analyzer's
// own execution timeline as Chrome Trace Event JSON (open in Perfetto:
// one track per worker thread plus a "pipeline" phase track).
// --sample-interval-ms starts the background sampler that snapshots the
// metrics registry every n ms into the --metrics document's
// "timeseries" section. Both are also settable from the config's
// "telemetry" section; the flags win. Output paths (--cube, --metrics,
// --trace-out) are validated up front — missing parent directories are
// created and an unwritable path fails before the pipeline runs.
//
// --patterns restricts the analysis to the named wait-state detectors
// (comma-separated keys; overrides the config's "analysis.patterns");
// --list-patterns prints the available detector keys and exits.
//
// With no arguments it runs a built-in demo config (and prints it), so
// `./build/examples/msc_run` works out of the box.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/pattern_engine.hpp"
#include "archive/archive.hpp"
#include "clocksync/amortization.hpp"
#include "clocksync/clock_condition.hpp"
#include "clocksync/correction.hpp"
#include "common/log.hpp"
#include "report/cubexml.hpp"
#include "report/profile.hpp"
#include "report/timeline.hpp"
#include "report/render.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/progress.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/snapshot.hpp"
#include "telemetry/trace_export.hpp"
#include "tracing/epilog_io.hpp"
#include "workloads/config.hpp"
#include "workloads/experiment.hpp"

using namespace metascope;

namespace {

const char* kDemoConfig = R"({
  "name": "demo-two-sites",
  "seed": 11,
  "topology": {
    "metahosts": [
      {"name": "Alpha", "nodes": 4, "cpus_per_node": 2, "speed": 1.0,
       "latency_us": 25, "jitter_us": 1, "bandwidth_gbps": 1.0},
      {"name": "Beta", "nodes": 4, "cpus_per_node": 2, "speed": 0.6,
       "latency_us": 40, "jitter_us": 1.5, "bandwidth_gbps": 0.5}
    ],
    "external": {"latency_us": 950, "jitter_us": 4,
                 "bandwidth_gbps": 1.25, "asymmetry": 0.08},
    "placement": [
      {"metahost": 0, "nodes": 4, "procs_per_node": 2},
      {"metahost": 1, "nodes": 4, "procs_per_node": 2}
    ]
  },
  "workload": {"kind": "metatrace", "coupling_steps": 3,
               "cg_iterations": 20, "field_mb_total": 64},
  "sync": "hierarchical-two"
})";

std::vector<std::string> split_keys(const std::string& list) {
  std::vector<std::string> keys;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string key =
        list.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    if (!key.empty()) keys.push_back(key);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return keys;
}

void print_pattern_list() {
  std::printf("available patterns (--patterns key[,key...]):\n");
  for (const auto& e : analysis::PatternRegistry::standard().entries()) {
    if (e.structural) continue;
    std::printf("  %-20s %s (%s)\n", e.key.c_str(), e.metric.c_str(),
                e.description.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string cube_path;
  std::string metrics_path;
  std::string trace_path;
  int sample_interval_ms = -1;  // -1 = not given on the CLI
  std::string archive_dir;
  int trace_format = 0;  // 0 = current (tracing::kTraceFormatVersion)
  bool permissive = false;
  bool streaming = false;
  long long memory_budget = 0;
  bool want_profile = false;
  bool want_amortize = false;
  bool want_timeline = false;
  bool have_cli_patterns = false;
  std::vector<std::string> cli_patterns;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cube") == 0 && i + 1 < argc) {
      cube_path = argv[++i];
    } else if (std::strcmp(argv[i], "--list-patterns") == 0) {
      print_pattern_list();
      return 0;
    } else if (std::strcmp(argv[i], "--patterns") == 0 && i + 1 < argc) {
      have_cli_patterns = true;
      cli_patterns = split_keys(argv[++i]);
    } else if (std::strncmp(argv[i], "--patterns=", 11) == 0) {
      have_cli_patterns = true;
      cli_patterns = split_keys(argv[i] + 11);
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics_path = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--sample-interval-ms") == 0 &&
               i + 1 < argc) {
      sample_interval_ms = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--sample-interval-ms=", 21) == 0) {
      sample_interval_ms = std::atoi(argv[i] + 21);
    } else if (std::strcmp(argv[i], "--log-level") == 0 && i + 1 < argc) {
      LogLevel level{};
      if (!parse_log_level(argv[++i], level)) {
        std::fprintf(stderr,
                     "msc_run: unknown log level '%s' (expected debug, "
                     "info, warn, error, or off)\n",
                     argv[i]);
        return 1;
      }
      set_log_level(level);
    } else if (std::strcmp(argv[i], "--archive-dir") == 0 && i + 1 < argc) {
      archive_dir = argv[++i];
    } else if (std::strncmp(argv[i], "--archive-dir=", 14) == 0) {
      archive_dir = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--trace-format") == 0 && i + 1 < argc) {
      trace_format = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--trace-format=", 15) == 0) {
      trace_format = std::atoi(argv[i] + 15);
    } else if (std::strcmp(argv[i], "--permissive") == 0) {
      permissive = true;
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      streaming = true;
    } else if (std::strcmp(argv[i], "--memory-budget") == 0 && i + 1 < argc) {
      memory_budget = std::atoll(argv[++i]);
    } else if (std::strncmp(argv[i], "--memory-budget=", 16) == 0) {
      memory_budget = std::atoll(argv[i] + 16);
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      telemetry::set_progress_enabled(true);
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      want_profile = true;
    } else if (std::strcmp(argv[i], "--amortize") == 0) {
      want_amortize = true;
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      want_timeline = true;
    } else {
      config_path = argv[i];
    }
  }

  if (trace_format != 0 &&
      (trace_format < static_cast<int>(tracing::kMinTraceFormatVersion) ||
       trace_format > static_cast<int>(tracing::kTraceFormatVersion))) {
    std::fprintf(stderr,
                 "msc_run: --trace-format %d out of range (supported: "
                 "%u..%u)\n",
                 trace_format, tracing::kMinTraceFormatVersion,
                 tracing::kTraceFormatVersion);
    return 1;
  }
  if (streaming && archive_dir.empty()) {
    std::fprintf(stderr,
                 "msc_run: --stream requires --archive-dir (streaming "
                 "replays the on-disk archive)\n");
    return 1;
  }
  if (streaming && trace_format != 0 &&
      trace_format < static_cast<int>(tracing::kTraceFormatVersion)) {
    std::fprintf(stderr,
                 "msc_run: --stream requires the columnar v%u trace format "
                 "(row-wise v%d archives must be materialized)\n",
                 tracing::kTraceFormatVersion, trace_format);
    return 1;
  }
  if (memory_budget < 0) {
    std::fprintf(stderr, "msc_run: --memory-budget must be >= 0\n");
    return 1;
  }
  if (memory_budget > 0 && !streaming) {
    std::fprintf(stderr, "msc_run: --memory-budget requires --stream\n");
    return 1;
  }

  try {
    workloads::ExperimentSpec spec =
        config_path.empty()
            ? workloads::parse_experiment(Json::parse(kDemoConfig))
            : workloads::load_experiment(config_path);
    if (config_path.empty()) {
      std::printf("(no config given — running the built-in demo)\n%s\n\n",
                  kDemoConfig);
    }

    // CLI flags override the config's "telemetry" section.
    if (trace_path.empty()) trace_path = spec.telemetry.trace_out;
    if (sample_interval_ms < 0)
      sample_interval_ms = spec.telemetry.sample_interval_ms;

    // Fail on a bad output path now, not after minutes of pipeline.
    if (!cube_path.empty()) ensure_writable_file(cube_path);
    if (!metrics_path.empty()) ensure_writable_file(metrics_path);
    if (!trace_path.empty()) ensure_writable_file(trace_path);

    const std::size_t workers = std::thread::hardware_concurrency();
    Json run_meta{Json::Object{}};
    run_meta.set("workload", spec.name);
    run_meta.set("seed",
                 static_cast<std::int64_t>(spec.config.clock_seed));
    run_meta.set("ranks", spec.topology.num_ranks());
    run_meta.set("workers", workers);
    telemetry::set_run_metadata(std::move(run_meta));

    if (!trace_path.empty()) {
      if (spec.telemetry.ring_capacity > 0)
        telemetry::Recorder::instance().configure(
            spec.telemetry.ring_capacity);
      telemetry::Recorder::instance().set_enabled(true);
      telemetry::set_thread_label("pipeline");
    }
    if (sample_interval_ms > 0)
      telemetry::start_sampler(sample_interval_ms);

    std::printf("experiment '%s'\n%s\n", spec.name.c_str(),
                spec.topology.describe().c_str());
    auto data =
        workloads::run_experiment(spec.topology, spec.program, spec.config);
    std::printf("run complete: %.3f s virtual, %zu events, %llu messages\n\n",
                data.exec.end_time.s, data.traces.total_events(),
                static_cast<unsigned long long>(data.exec.stats.messages));

    if (!archive_dir.empty() && !streaming) {
      // Round-trip through the on-disk archive so the analyzed traces
      // pass through the hardened decode layer (and, with --permissive,
      // its quarantine-and-proceed recovery). (--stream instead writes
      // the archive after clock synchronization and analyzes it out of
      // core below.)
      const auto layout = archive::FileSystemLayout::shared(
          archive_dir, spec.topology.num_metahosts());
      const auto arch =
          archive::ExperimentArchive::create(spec.topology, layout, spec.name);
      archive::WriteOptions wopts;
      wopts.format_version = static_cast<std::uint32_t>(trace_format);
      arch.write_traces(spec.topology, data.traces, wopts);
      archive::ReadOptions ropts;
      ropts.permissive = permissive;
      archive::ReadReport rep;
      data.traces = arch.read_traces(ropts, &rep);
      std::printf("archive round-trip via %s (%s mode)\n", archive_dir.c_str(),
                  permissive ? "permissive" : "strict");
      if (rep.quarantined.empty()) {
        std::printf("all %d ranks decoded cleanly\n\n",
                    spec.topology.num_ranks());
      } else {
        std::printf("quarantined %zu rank(s), pruned %zu event(s):\n",
                    rep.quarantined.size(), rep.events_pruned);
        for (const auto& q : rep.quarantined)
          std::printf("  rank %d: [%s] %s (%s)\n", q.rank,
                      to_string(q.code), q.reason.c_str(), q.path.c_str());
        std::printf("\n");
        Json qmeta{Json::Object{}};
        Json qranks{Json::Array{}};
        for (const auto& q : rep.quarantined)
          qranks.push_back(Json(static_cast<std::int64_t>(q.rank)));
        qmeta.set("quarantined_ranks", std::move(qranks));
        qmeta.set("events_pruned",
                  static_cast<std::int64_t>(rep.events_pruned));
        telemetry::merge_run_metadata("ingestion", std::move(qmeta));
      }
    }

    if (spec.config.measurement.scheme != tracing::SyncScheme::None) {
      clocksync::synchronize(data.traces);
      const auto violations =
          clocksync::check_clock_condition(data.traces);
      std::printf("clock condition after synchronization: %zu/%zu violations\n",
                  violations.violations, violations.messages);
      if (want_amortize && violations.violations > 0) {
        const auto rep = clocksync::amortize_violations(data.traces);
        std::printf(
            "amortization: repaired %zu receives in %zu passes (max shift "
            "%.1f us)\n",
            rep.repaired_receives, rep.passes, rep.max_shift * 1e6);
      }
      std::printf("\n");
    }

    if (want_profile) {
      const auto prof = report::profile_traces(data.traces);
      std::printf("%s\n",
                  report::render_profile(prof, data.traces.defs).c_str());
    }

    if (want_timeline) {
      std::printf("%s\n", report::render_timeline(data.traces).c_str());
    }

    analysis::ReplayOptions aopts;
    aopts.patterns = have_cli_patterns ? cli_patterns : spec.patterns;
    aopts.memory_budget_bytes = static_cast<std::size_t>(memory_budget);
    analysis::AnalysisResult res;
    if (streaming) {
      // Out-of-core path: the *synchronized* traces go to disk (clock
      // correction rewrites timestamps in memory, so the archive must
      // be written after it for the streamed cube to match), then the
      // replay pulls them back in bounded windows.
      const auto layout = archive::FileSystemLayout::shared(
          archive_dir, spec.topology.num_metahosts());
      const auto arch = archive::ExperimentArchive::create(
          spec.topology, layout, spec.name);
      arch.write_traces(spec.topology, data.traces, archive::WriteOptions{});
      archive::ReadOptions ropts;
      ropts.permissive = permissive;
      archive::ReadReport rep;
      const auto src = arch.stream_source(ropts, &rep);
      std::printf("streaming analysis from %s (%s mode, budget %s)\n",
                  archive_dir.c_str(), permissive ? "permissive" : "strict",
                  memory_budget > 0 ? std::to_string(memory_budget).c_str()
                                    : "default");
      if (!rep.quarantined.empty()) {
        std::printf("quarantined %zu rank(s):\n", rep.quarantined.size());
        for (const auto& q : rep.quarantined)
          std::printf("  rank %d: [%s] %s (%s)\n", q.rank,
                      to_string(q.code), q.reason.c_str(), q.path.c_str());
        Json qmeta{Json::Object{}};
        Json qranks{Json::Array{}};
        for (const auto& q : rep.quarantined)
          qranks.push_back(Json(static_cast<std::int64_t>(q.rank)));
        qmeta.set("quarantined_ranks", std::move(qranks));
        telemetry::merge_run_metadata("ingestion", std::move(qmeta));
      }
      res = analysis::analyze_streaming(src, aopts);
      std::printf(
          "streamed %zu events in %llu windows, peak resident %zu bytes\n\n",
          res.stats.events,
          static_cast<unsigned long long>(
              telemetry::counter("analysis.stream.windows").value()),
          res.stats.trace_bytes_in_memory);
    } else {
      res = analysis::analyze_parallel(data.traces, aopts);
    }
    std::printf("%s\n", report::render_report(res.cube).c_str());
    for (MetricId m :
         {res.patterns.grid_late_sender, res.patterns.grid_late_receiver,
          res.patterns.grid_wait_nxn, res.patterns.grid_wait_barrier,
          res.patterns.grid_nxn_completion,
          res.patterns.grid_barrier_completion}) {
      if (!m.valid()) continue;  // pattern deselected via --patterns
      const std::string pb = report::render_pair_breakdown(res.cube, m);
      if (!pb.empty()) std::printf("%s\n", pb.c_str());
    }

    if (!cube_path.empty()) {
      report::save_cube(cube_path, res.cube);
      std::printf("severity cube written to %s\n", cube_path.c_str());
    }
    telemetry::stop_sampler();
    if (!metrics_path.empty()) {
      telemetry::save_snapshot(metrics_path);
      std::printf("telemetry snapshot written to %s\n",
                  metrics_path.c_str());
    }
    if (!trace_path.empty()) {
      telemetry::save_chrome_trace(trace_path);
      std::printf("execution trace written to %s (open in Perfetto)\n",
                  trace_path.c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "msc_run: %s\n", e.what());
    telemetry::stop_sampler();
    // A failed run is exactly when the timeline matters most: keep
    // whatever the recorder captured.
    if (!trace_path.empty()) {
      try {
        telemetry::save_chrome_trace(trace_path);
        std::fprintf(stderr, "partial execution trace written to %s\n",
                     trace_path.c_str());
      } catch (const Error&) {
      }
    }
    return 1;
  }
}
