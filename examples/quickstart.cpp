// Quickstart: the whole MetaScope pipeline in ~60 lines.
//
//  1. describe a two-site metacomputer,
//  2. write a small MPI-like program with the fluent builder,
//  3. execute it on the simulator with realistic skewed clocks,
//  4. synchronize timestamps hierarchically and search for wait-state
//     patterns,
//  5. print the three-panel analysis report.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "analysis/analyzer.hpp"
#include "clocksync/correction.hpp"
#include "report/render.hpp"
#include "simmpi/program.hpp"
#include "simnet/topology.hpp"
#include "workloads/experiment.hpp"

using namespace metascope;

int main() {
  // --- 1. a metacomputer: two 4-node sites joined by a slow WAN --------
  simnet::Topology topo;
  simnet::MetahostSpec site_a;
  site_a.name = "SiteA";
  site_a.num_nodes = 4;
  site_a.cpus_per_node = 1;
  site_a.internal = simnet::LinkSpec{microseconds(20), microseconds(1), 1e9};
  simnet::MetahostSpec site_b = site_a;
  site_b.name = "SiteB";
  site_b.speed_factor = 0.5;  // SiteB's CPUs are half as fast
  const MetahostId a = topo.add_metahost(site_a);
  const MetahostId b = topo.add_metahost(site_b);
  simnet::LinkSpec wan{milliseconds(1.0), microseconds(4), 1.25e9};
  wan.asymmetry = 0.08;
  topo.set_external_link(a, b, wan);
  topo.place_block(a, 4, 1);  // ranks 0..3
  topo.place_block(b, 4, 1);  // ranks 4..7

  // --- 2. an 8-rank program: compute, exchange, reduce ------------------
  simmpi::ProgramBuilder builder(topo.num_ranks());
  for (Rank r = 0; r < topo.num_ranks(); ++r) {
    auto& p = builder.on(r);
    p.enter("main");
    for (int step = 0; step < 10; ++step) {
      p.enter("solve");
      p.compute(0.01);  // SiteB needs 0.02 s for this
      p.exit();
      p.enter("exchange");
      p.sendrecv((r + 1) % 8, 64 * 1024, (r + 7) % 8, 64 * 1024, step);
      p.exit();
      p.allreduce(64.0);
    }
    p.exit();
  }
  const simmpi::Program prog = builder.take();

  // --- 3. run it with skewed, drifting node clocks ----------------------
  workloads::ExperimentConfig cfg;  // hierarchical sync is the default
  auto data = workloads::run_experiment(topo, prog, cfg);
  std::printf("simulated run: %.3f s, %zu trace events\n",
              data.exec.end_time.s, data.traces.total_events());

  // --- 4. synchronize + analyze -----------------------------------------
  clocksync::synchronize(data.traces);
  const auto result = analysis::analyze_parallel(data.traces);

  // --- 5. report ---------------------------------------------------------
  report::RenderOptions opts;
  opts.selected_metric = "Grid Wait at N x N";
  std::printf("%s\n", report::render_report(result.cube, opts).c_str());
  std::printf(
      "Reading the result: SiteB computes at half speed, so SiteA's ranks\n"
      "wait in the Allreduce (Grid Wait at N x N) and in the ring\n"
      "exchange (Grid Late Sender) — the analyzer pinpoints both.\n");
  return 0;
}
