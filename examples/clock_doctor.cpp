// "Clock doctor": a diagnostic tool built on the clocksync substrate.
// For a chosen metacomputer it measures how each synchronization scheme
// holds up — recorded offsets, ground-truth residual errors, and
// clock-condition violations — and explains which scheme to use.
//
// Usage: clock_doctor [rounds]   (default 800)
#include <cstdio>
#include <cstdlib>

#include "clocksync/clock_condition.hpp"
#include "clocksync/correction.hpp"
#include "clocksync/error_analysis.hpp"
#include "common/table.hpp"
#include "simnet/presets.hpp"
#include "workloads/clockbench.hpp"
#include "workloads/experiment.hpp"

using namespace metascope;

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 800;
  const auto topo = simnet::make_viola_experiment1();
  std::printf("%s\n", topo.describe().c_str());

  workloads::ClockBenchConfig bc;
  bc.rounds = rounds;
  bc.pad_work = 0.02;
  const auto prog = workloads::build_clock_bench(topo.num_ranks(), bc);

  TextTable t({"scheme", "violations", "messages", "intra-mh err max [us]",
               "inter-mh err max [us]", "worst reversal [us]"});
  for (auto scheme :
       {tracing::SyncScheme::FlatSingle, tracing::SyncScheme::FlatTwo,
        tracing::SyncScheme::HierarchicalTwo}) {
    workloads::ExperimentConfig cfg;
    cfg.measurement.scheme = scheme;
    auto data = workloads::run_experiment(topo, prog, cfg);
    const auto corr = clocksync::build_corrections(data.traces);
    clocksync::apply_corrections(data.traces, corr);
    const auto rep = clocksync::check_clock_condition(data.traces);
    const auto survey = clocksync::survey_errors(
        topo, data.clocks, corr,
        {TrueTime{1.0}, TrueTime{10.0}, TrueTime{20.0}});
    t.add_row({tracing::to_string(scheme), std::to_string(rep.violations),
               std::to_string(rep.messages),
               TextTable::fixed(survey.intra_metahost_abs.max() * 1e6, 2),
               TextTable::fixed(survey.inter_metahost_abs.max() * 1e6, 2),
               TextTable::fixed(rep.worst_reversal * 1e6, 2)});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Diagnosis: flat schemes derive intra-metahost offsets from two\n"
      "independent WAN measurements, inheriting the WAN's asymmetry bias;\n"
      "their intra-metahost error exceeds the internal message latency\n"
      "(21.5/44.4/55 us) and the clock condition breaks. The hierarchical\n"
      "scheme measures inside each metahost over the fast links and pays\n"
      "the WAN error only once, shared by all local processes — relative\n"
      "offsets within a metahost stay exact and violations vanish.\n");
  return 0;
}
