// The paper's Section 5 study as a runnable example: analyze the
// MetaTrace multi-physics application on the heterogeneous VIOLA
// metacomputer and on a homogeneous machine, write both severity cubes
// plus their algebraic difference to disk, and print the comparison.
//
// Usage: metatrace_study [output_dir]   (default: ./metatrace_study_out)
#include <cstdio>
#include <filesystem>
#include <string>

#include "analysis/analyzer.hpp"
#include "archive/archive.hpp"
#include "clocksync/correction.hpp"
#include "report/algebra.hpp"
#include "report/cubexml.hpp"
#include "report/render.hpp"
#include "simnet/presets.hpp"
#include "workloads/experiment.hpp"
#include "workloads/metatrace.hpp"

using namespace metascope;

namespace {

analysis::AnalysisResult measure_and_analyze(const simnet::Topology& topo,
                                             const std::string& archive_base,
                                             const std::string& name) {
  const auto prog = workloads::build_metatrace();
  workloads::ExperimentConfig cfg;
  auto data = workloads::run_experiment(topo, prog, cfg);

  // Store the traces the metacomputing way: one partial archive per
  // metahost, no shared file system assumed.
  const auto layout = archive::FileSystemLayout::per_metahost(
      archive_base + "/" + name, topo.num_metahosts());
  archive::CreationStats stats;
  const auto arch =
      archive::ExperimentArchive::create(topo, layout, name, &stats);
  arch.write_traces(topo, data.traces);
  std::printf("[%s] archive: %zu partial dirs, %d create attempts\n",
              name.c_str(), arch.partial_dirs().size(),
              stats.create_attempts);

  auto tc = arch.read_traces();
  clocksync::synchronize(tc);
  return analysis::analyze_parallel(tc);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out =
      argc > 1 ? argv[1] : std::string("metatrace_study_out");
  std::filesystem::create_directories(out);

  std::printf("=== Experiment 1: three metahosts (VIOLA) ===\n");
  const auto het = measure_and_analyze(simnet::make_viola_experiment1(),
                                       out, "het");
  std::printf("%s\n", report::render_metric_tree(het.cube).c_str());

  std::printf("=== Experiment 2: one homogeneous metahost ===\n");
  const auto hom =
      measure_and_analyze(simnet::make_ibm_power(32), out, "hom");
  std::printf("%s\n", report::render_metric_tree(hom.cube).c_str());

  std::printf("=== Where do the waits live? (heterogeneous run) ===\n");
  std::printf("%s\n",
              report::render_call_tree(het.cube,
                                       het.patterns.grid_wait_barrier)
                  .c_str());
  std::printf("%s\n",
              report::render_system_tree(het.cube,
                                         het.patterns.grid_late_sender)
                  .c_str());

  report::save_cube(out + "/het.cubex", het.cube);
  report::save_cube(out + "/hom.cubex", hom.cube);
  const report::Cube diff = report::cube_diff(het.cube, hom.cube);
  report::save_cube(out + "/het_minus_hom.cubex", diff);

  std::printf("=== het - hom (cube algebra) ===\n");
  for (const char* name :
       {"Grid Wait at Barrier", "Grid Late Sender", "Late Sender"}) {
    std::printf("  %-22s %+8.2f s\n", name,
                diff.metric_total(diff.metrics.find(name)));
  }
  std::printf(
      "\nCubes written to %s/{het,hom,het_minus_hom}.cubex — load them\n"
      "with report::load_cube() for further processing.\n",
      out.c_str());
  return 0;
}
